"""Near-zero-overhead engine telemetry: counters, gauges, histograms.

The registry is the sanctioned runtime-observability mechanism for the
simulation engine (the project linter's REP006 forbids wall-clock calls
inside :mod:`repro.simulator`): every instrument is **cycle-stamped** —
updates carry the simulation cycle, never ``time.time()`` — so telemetry
is exactly reproducible and free of clock syscalls in the hot path.

Design rules:

* **Disabled = one attribute check.**  The engine guards every publish
  site with ``if self.telemetry is not None:``; a run constructed with
  ``telemetry=None`` (the default) executes no instrument code at all.
* **Enabled = attribute bumps.**  The engine binds instrument objects
  once (:meth:`~repro.simulator.engine.Simulation.attach_telemetry`) and
  hot paths do ``counter.inc(cycle)`` — a slot write and an int add, no
  dict lookup, no string formatting.
* **One registry, many runs.**  A registry may be attached to several
  simulations in sequence (e.g. one per algorithm in a figure sweep);
  counters then accumulate across runs.  Use :meth:`TelemetryRegistry.
  reset` or a fresh registry for per-run numbers.

The engine's counter catalog is documented in ``docs/observability.md``;
:func:`repro.metrics.vc_usage.reconcile_vc_usage` cross-checks the
per-role occupancy counters against the Figure 3 ``vc_busy`` aggregates.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "make_instrument",
]


class Counter:
    """A monotonically increasing, cycle-stamped counter."""

    __slots__ = ("name", "value", "last_cycle")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.last_cycle = -1

    def inc(self, cycle: int, n: int = 1) -> None:
        self.value += n
        self.last_cycle = cycle

    def reset(self) -> None:
        self.value = 0
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "value": self.value,
            "last_cycle": self.last_cycle,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value with the cycle it was last set."""

    __slots__ = ("name", "value", "last_cycle")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.last_cycle = -1

    def set(self, cycle: int, value) -> None:
        self.value = value
        self.last_cycle = cycle

    def reset(self) -> None:
        self.value = 0
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "last_cycle": self.last_cycle,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


#: Default histogram bucket upper bounds (cycles): powers of two give a
#: latency profile from "one router" to "deeply saturated".
DEFAULT_BOUNDS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


class Histogram:
    """A fixed-bucket histogram (upper-bound buckets plus overflow)."""

    __slots__ = ("name", "bounds", "counts", "total", "sum", "last_cycle")

    def __init__(self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last bucket = overflow
        self.total = 0
        self.sum = 0
        self.last_cycle = -1

    def observe(self, cycle: int, value: int) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        self.last_cycle = cycle

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "last_cycle": self.last_cycle,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, total={self.total})"


class TelemetryRegistry:
    """Named instruments; get-or-create accessors, snapshot export.

    Instruments are plain objects (no locks — the engine is
    single-threaded per process); process pools should give each worker
    its own registry and merge snapshots afterwards.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Counter(name)
        elif not isinstance(inst, Counter):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Gauge(name)
        elif not isinstance(inst, Gauge):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        return inst

    def histogram(
        self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Histogram(name, bounds)
        elif not isinstance(inst, Histogram):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        return inst

    # ------------------------------------------------------------------
    def get(self, name: str):
        """The instrument named *name*, or ``None``."""
        return self._instruments.get(name)

    def value(self, name: str, default: int = 0):
        """Shorthand: the value of a counter/gauge (``default`` if absent)."""
        inst = self._instruments.get(name)
        return default if inst is None else inst.value

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument (names and types are kept)."""
        for inst in self._instruments.values():
            inst.reset()

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def render(self, prefix: str = "") -> str:
        """A human-readable table of instruments (optionally filtered)."""
        lines = []
        for name in sorted(self._instruments):
            if prefix and not name.startswith(prefix):
                continue
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                lines.append(
                    f"{name:<40} n={inst.total} mean={inst.mean:.1f}"
                )
            else:
                lines.append(f"{name:<40} {inst.value}")
        return "\n".join(lines)


def make_instrument(telemetry: TelemetryRegistry | None = None, tracer=None):
    """A per-run hook for :class:`repro.core.evaluator.Evaluator`.

    The returned callable attaches *telemetry* (a shared registry,
    accumulating across runs) and/or *tracer* (a shared
    :class:`~repro.simulator.trace.Tracer`) to every
    :class:`~repro.simulator.engine.Simulation` the evaluator executes.
    Note that cache hits in a :class:`~repro.store.CachedEvaluator` do
    not re-simulate, so instrumented counters cover executed runs only.
    """

    def instrument(sim) -> None:
        if telemetry is not None:
            sim.attach_telemetry(telemetry)
        if tracer is not None:
            sim.tracer = tracer

    return instrument
