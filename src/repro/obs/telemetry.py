"""Near-zero-overhead engine telemetry: counters, gauges, histograms.

The registry is the sanctioned runtime-observability mechanism for the
simulation engine (the project linter's REP006 forbids wall-clock calls
inside :mod:`repro.simulator`): every instrument is **cycle-stamped** —
updates carry the simulation cycle, never ``time.time()`` — so telemetry
is exactly reproducible and free of clock syscalls in the hot path.

Design rules:

* **Disabled = one attribute check.**  The engine guards every publish
  site with ``if self.telemetry is not None:``; a run constructed with
  ``telemetry=None`` (the default) executes no instrument code at all.
* **Enabled = attribute bumps.**  The engine binds instrument objects
  once (:meth:`~repro.simulator.engine.Simulation.attach_telemetry`) and
  hot paths do ``counter.inc(cycle)`` — a slot write and an int add, no
  dict lookup, no string formatting.
* **One registry, many runs.**  A registry may be attached to several
  simulations in sequence (e.g. one per algorithm in a figure sweep);
  counters then accumulate across runs.  Use :meth:`TelemetryRegistry.
  reset` or a fresh registry for per-run numbers.
* **Distribution = snapshot + merge.**  Registries never cross process
  boundaries; pool workers attach a *fresh* registry each, ship its
  JSON-safe :meth:`~TelemetryRegistry.snapshot` back with their result,
  and the parent folds the snapshots into its own registry with
  :meth:`~TelemetryRegistry.merge` (counters sum, gauges keep the
  cycle-latest value, histograms merge bucket-wise).  Counter and
  histogram contents are therefore identical to a sequential run over
  the same cells, independent of merge order.

The engine's counter catalog is documented in ``docs/observability.md``;
:func:`repro.metrics.vc_usage.reconcile_vc_usage` cross-checks the
per-role occupancy counters against the Figure 3 ``vc_busy`` aggregates.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "LabeledCounter",
    "Series",
    "TelemetryRegistry",
    "make_instrument",
    "series_snapshot",
]


class Counter:
    """A monotonically increasing, cycle-stamped counter."""

    __slots__ = ("name", "value", "last_cycle")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.last_cycle = -1

    def inc(self, cycle: int, n: int = 1) -> None:
        self.value += n
        self.last_cycle = cycle

    def reset(self) -> None:
        self.value = 0
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "value": self.value,
            "last_cycle": self.last_cycle,
        }

    def merge(self, payload: dict) -> None:
        """Fold another counter's snapshot in: values sum."""
        self.value += payload["value"]
        self.last_cycle = max(self.last_cycle, payload["last_cycle"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class LabeledCounter:
    """A fixed-size vector of cycle-stamped counts (e.g. one per node).

    One instrument object covers a whole index space — the engine's
    spatial counters (``engine.node_flit_hops``, ``engine.node_blocked``)
    use one slot per mesh node, so the hot path pays a list-index add
    instead of a dict lookup over hundreds of named counters, and a
    snapshot ships the whole surface as one array.
    """

    __slots__ = ("name", "values", "last_cycle")

    def __init__(self, name: str, size: int) -> None:
        if size <= 0:
            raise ValueError("labeled counter needs a positive size")
        self.name = name
        self.values = [0] * size
        self.last_cycle = -1

    def inc(self, cycle: int, index: int, n: int = 1) -> None:
        self.values[index] += n
        self.last_cycle = cycle

    @property
    def value(self) -> int:
        """Total across all labels (what :meth:`TelemetryRegistry.value`
        and :meth:`~TelemetryRegistry.render` report)."""
        return sum(self.values)

    def reset(self) -> None:
        self.values = [0] * len(self.values)
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "labeled_counter",
            "values": list(self.values),
            "last_cycle": self.last_cycle,
        }

    def merge(self, payload: dict) -> None:
        """Fold another labeled counter's snapshot in: slot-wise sums."""
        other = payload["values"]
        if len(other) != len(self.values):
            raise ValueError(
                f"{self.name!r}: cannot merge {len(other)} labels into "
                f"{len(self.values)}"
            )
        values = self.values
        for i, v in enumerate(other):
            values[i] += v
        self.last_cycle = max(self.last_cycle, payload["last_cycle"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabeledCounter({self.name!r}, size={len(self.values)})"


class Series:
    """A windowed time series: one accumulating count per cycle window.

    ``add(cycle, n)`` folds *n* into the window ``cycle // window`` —
    the hot path pays an integer divide and a list-index add, the same
    order of cost as a :class:`LabeledCounter` bump.  Windows are
    allocated lazily up to the highest cycle seen, so a run stopped
    early (``cycles_mode="auto"``) simply ships fewer windows.

    Merging is element-wise summation with length extension, which
    covers both distribution shapes with one rule:

    * **worker shards** — workers simulating the same cycle range sum
      window-by-window, exactly like counters;
    * **disjoint run segments** — a segment that only touched later
      windows extends the series, concatenating in absolute cycle
      coordinates (earlier windows merge with implicit zeros).
    """

    __slots__ = ("name", "window", "values", "last_cycle")

    def __init__(self, name: str, window: int) -> None:
        if window <= 0:
            raise ValueError("series needs a positive window width")
        self.name = name
        self.window = window
        self.values: list[int] = []
        self.last_cycle = -1

    def add(self, cycle: int, n: int = 1) -> None:
        idx = cycle // self.window
        values = self.values
        if idx >= len(values):
            values.extend([0] * (idx + 1 - len(values)))
        values[idx] += n
        self.last_cycle = cycle

    @property
    def value(self):
        """Total across all windows (what :meth:`TelemetryRegistry.value`
        and :meth:`~TelemetryRegistry.render` report)."""
        return sum(self.values)

    def window_start(self, index: int) -> int:
        """First cycle covered by window *index*."""
        return index * self.window

    def reset(self) -> None:
        self.values = []
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "series",
            "window": self.window,
            "values": list(self.values),
            "last_cycle": self.last_cycle,
        }

    def merge(self, payload: dict) -> None:
        """Fold another series' snapshot in: window-wise sums.

        The incoming series may be longer or shorter; missing windows on
        either side are implicit zeros, so worker shards sum and
        disjoint segments concatenate with the same rule.
        """
        if payload["window"] != self.window:
            raise ValueError(
                f"{self.name!r}: cannot merge window={payload['window']} "
                f"into window={self.window}"
            )
        other = payload["values"]
        values = self.values
        if len(other) > len(values):
            values.extend([0] * (len(other) - len(values)))
        for i, v in enumerate(other):
            values[i] += v
        self.last_cycle = max(self.last_cycle, payload["last_cycle"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Series({self.name!r}, window={self.window}, "
            f"n={len(self.values)})"
        )


class Gauge:
    """A point-in-time value with the cycle it was last set."""

    __slots__ = ("name", "value", "last_cycle")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.last_cycle = -1

    def set(self, cycle: int, value) -> None:
        self.value = value
        self.last_cycle = cycle

    def reset(self) -> None:
        self.value = 0
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "last_cycle": self.last_cycle,
        }

    def merge(self, payload: dict) -> None:
        """Fold another gauge's snapshot in: the cycle-latest value wins.

        Ties on ``last_cycle`` (e.g. two workers both sampled at the
        final watchdog tick) keep the larger value so the outcome is
        independent of merge order.
        """
        if payload["last_cycle"] > self.last_cycle or (
            payload["last_cycle"] == self.last_cycle
            and payload["value"] > self.value
        ):
            self.value = payload["value"]
            self.last_cycle = payload["last_cycle"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


#: Default histogram bucket upper bounds (cycles): powers of two give a
#: latency profile from "one router" to "deeply saturated".
DEFAULT_BOUNDS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


class Histogram:
    """A fixed-bucket histogram (upper-bound buckets plus overflow)."""

    __slots__ = ("name", "bounds", "counts", "total", "sum", "last_cycle")

    def __init__(self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last bucket = overflow
        self.total = 0
        self.sum = 0
        self.last_cycle = -1

    def observe(self, cycle: int, value: int) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        self.last_cycle = cycle

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0
        self.last_cycle = -1

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "last_cycle": self.last_cycle,
        }

    def merge(self, payload: dict) -> None:
        """Fold another histogram's snapshot in: bucket-wise sums."""
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"{self.name!r}: cannot merge histogram with bounds "
                f"{payload['bounds']} into {list(self.bounds)}"
            )
        counts = self.counts
        for i, c in enumerate(payload["counts"]):
            counts[i] += c
        self.total += payload["total"]
        self.sum += payload["sum"]
        self.last_cycle = max(self.last_cycle, payload["last_cycle"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, total={self.total})"


class TelemetryRegistry:
    """Named instruments; get-or-create accessors, snapshot export.

    Instruments are plain objects (no locks — the engine is
    single-threaded per process); process pools should give each worker
    its own registry and merge snapshots afterwards.
    """

    def __init__(self) -> None:
        self._instruments: dict[
            str, Counter | Gauge | Histogram | LabeledCounter | Series
        ] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Counter(name)
        elif not isinstance(inst, Counter):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Gauge(name)
        elif not isinstance(inst, Gauge):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        return inst

    def histogram(
        self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Histogram(name, bounds)
        elif not isinstance(inst, Histogram):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        return inst

    def labeled_counter(self, name: str, size: int) -> LabeledCounter:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = LabeledCounter(name, size)
        elif not isinstance(inst, LabeledCounter):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        elif len(inst.values) != size:
            raise ValueError(
                f"{name!r} already has {len(inst.values)} labels, not {size}"
            )
        return inst

    def series(self, name: str, window: int) -> Series:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Series(name, window)
        elif not isinstance(inst, Series):
            raise TypeError(f"{name!r} is already a {type(inst).__name__}")
        elif inst.window != window:
            raise ValueError(
                f"{name!r} already has window {inst.window}, not {window}"
            )
        return inst

    # ------------------------------------------------------------------
    def get(self, name: str):
        """The instrument named *name*, or ``None``."""
        return self._instruments.get(name)

    def value(self, name: str, default: int = 0):
        """Shorthand: the value of a counter/gauge (``default`` if absent)."""
        inst = self._instruments.get(name)
        return default if inst is None else inst.value

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument (names and types are kept)."""
        for inst in self._instruments.values():
            inst.reset()

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def merge(self, other) -> None:
        """Fold a snapshot (or another registry) into this registry.

        *other* is either a :meth:`snapshot` dict or a
        :class:`TelemetryRegistry`.  Instruments absent here are created
        with the snapshot's type (and bounds/size, for histograms and
        labeled counters); instruments present in both merge per type —
        counters and labeled counters sum, gauges keep the value with the
        larger ``last_cycle`` (ties keep the larger value), histograms
        add bucket-wise.  Counter/histogram contents are therefore
        independent of merge order, so a parent that merges N worker
        snapshots matches a sequential run over the same cells exactly.

        Raises ``TypeError`` when a name is bound to a different
        instrument type on the two sides, ``ValueError`` on histogram
        bound or labeled-counter size mismatches.
        """
        if isinstance(other, TelemetryRegistry):
            other = other.snapshot()
        for name in sorted(other):
            payload = other[name]
            kind = payload["type"]
            inst = self._instruments.get(name)
            if inst is None:
                if kind == "counter":
                    inst = self.counter(name)
                elif kind == "gauge":
                    inst = self.gauge(name)
                elif kind == "histogram":
                    inst = self.histogram(name, tuple(payload["bounds"]))
                elif kind == "labeled_counter":
                    inst = self.labeled_counter(name, len(payload["values"]))
                elif kind == "series":
                    inst = self.series(name, payload["window"])
                else:
                    raise TypeError(
                        f"{name!r}: unknown instrument type {kind!r}"
                    )
            else:
                expected = {
                    Counter: "counter",
                    Gauge: "gauge",
                    Histogram: "histogram",
                    LabeledCounter: "labeled_counter",
                    Series: "series",
                }[type(inst)]
                if kind != expected:
                    raise TypeError(
                        f"{name!r} is a {expected} here but a {kind} "
                        "in the snapshot"
                    )
            inst.merge(payload)

    def digest(self) -> str:
        """A short stable hash of the current snapshot.

        Run manifests record this so two runs' telemetry can be compared
        at a glance (and the workers=N merge checked against workers=1)
        without embedding the full snapshot in every event.
        """
        import hashlib

        from repro.store.keys import canonical_json

        return hashlib.sha256(
            canonical_json(self.snapshot()).encode("utf-8")
        ).hexdigest()[:16]

    def merge_view(self) -> dict:
        """The partition-independent slice of the snapshot.

        Counters, labeled counters, histograms and series merge
        value-exactly regardless of how the cells were split across
        workers or shards.  Gauges ("most recent value") and the
        ``last_cycle`` bookkeeping depend on *which* registry observed
        the temporally-last event, so they are excluded here.
        """
        return {
            name: {k: v for k, v in sorted(payload.items()) if k != "last_cycle"}
            for name, payload in sorted(self.snapshot().items())
            if payload["type"] != "gauge"
        }

    def merge_digest(self) -> str:
        """Digest of :meth:`merge_view` — equal across any sharding.

        This is the proof-of-equality value :mod:`repro.campaigns`
        records: a sequential run and an N-shard merged run over the
        same cells produce the same ``merge_digest`` by construction.
        """
        import hashlib

        from repro.store.keys import canonical_json

        return hashlib.sha256(
            canonical_json(self.merge_view()).encode("utf-8")
        ).hexdigest()[:16]

    def render(self, prefix: str = "") -> str:
        """A human-readable table of instruments (optionally filtered)."""
        lines = []
        for name in sorted(self._instruments):
            if prefix and not name.startswith(prefix):
                continue
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                lines.append(
                    f"{name:<40} n={inst.total} mean={inst.mean:.1f}"
                )
            elif isinstance(inst, Series):
                lines.append(
                    f"{name:<40} {inst.value} "
                    f"({len(inst.values)}x{inst.window}-cycle windows)"
                )
            else:
                lines.append(f"{name:<40} {inst.value}")
        return "\n".join(lines)


def series_snapshot(source) -> dict:
    """The series-only slice of a registry snapshot.

    *source* is a :class:`TelemetryRegistry` or a full
    :meth:`~TelemetryRegistry.snapshot` dict.  Run manifests embed this
    slice in their ``run-finish`` event so ``obs timeline`` can render a
    finished run's dynamics without re-simulating; the scalar
    instruments stay summarized by the snapshot digest alone.
    """
    if isinstance(source, TelemetryRegistry):
        source = source.snapshot()
    return {
        name: payload
        for name, payload in source.items()
        if payload.get("type") == "series"
    }


class Instrument:
    """A per-run hook for :class:`repro.core.evaluator.Evaluator`.

    Calling it on a :class:`~repro.simulator.engine.Simulation` attaches
    *telemetry* (a shared registry, accumulating across runs) and/or
    *tracer* (a shared :class:`~repro.simulator.trace.Tracer`).  Note
    that cache hits in a :class:`~repro.store.CachedEvaluator` do not
    re-simulate, so instrumented counters cover executed runs only.

    The attributes are inspectable so the experiment drivers can decide
    how to distribute work: a telemetry-only instrument is
    **pool-safe** — workers attach fresh registries and the parent
    merges their snapshots — while a tracer accumulates ordered events
    in process and forces the sequential path.  Arbitrary callables
    (the pre-merge API) still work everywhere but are treated like
    tracers: the drivers cannot see inside them, so they stay in
    process.
    """

    __slots__ = ("telemetry", "tracer")

    def __init__(
        self, telemetry: TelemetryRegistry | None = None, tracer=None
    ) -> None:
        self.telemetry = telemetry
        self.tracer = tracer

    def __call__(self, sim) -> None:
        if self.telemetry is not None:
            sim.attach_telemetry(self.telemetry)
        if self.tracer is not None:
            sim.tracer = self.tracer

    @property
    def pool_safe(self) -> bool:
        """True when this instrument can be replicated across workers."""
        return self.tracer is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.telemetry is not None:
            parts.append("telemetry")
        if self.tracer is not None:
            parts.append("tracer")
        return f"Instrument({'+'.join(parts) or 'noop'})"


def make_instrument(
    telemetry: TelemetryRegistry | None = None, tracer=None
) -> Instrument:
    """Build an :class:`Instrument` (kept for API compatibility)."""
    return Instrument(telemetry, tracer)
