"""Small shared utilities: serialization of experiment inputs/outputs."""

from repro.util.serialization import (
    config_from_dict,
    config_to_dict,
    pattern_from_dict,
    pattern_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "config_from_dict",
    "config_to_dict",
    "pattern_from_dict",
    "pattern_to_dict",
    "result_from_dict",
    "result_to_dict",
]
