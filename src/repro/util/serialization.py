"""JSON-safe serialization of experiment inputs.

Results JSON alone cannot reproduce a run — the fault layout and the
exact configuration matter.  These helpers round-trip
:class:`~repro.simulator.config.SimConfig` and
:class:`~repro.faults.pattern.FaultPattern` through plain dicts so a
manifest can be stored next to every results file.
"""

from __future__ import annotations

from dataclasses import asdict, fields

from repro.faults.pattern import FaultPattern
from repro.simulator.config import SimConfig
from repro.simulator.engine import SimulationResult
from repro.topology.mesh import Mesh2D

_SCHEMA_VERSION = 1

#: Scalar counter fields of :class:`SimulationResult`; the config and the
#: per-VC/per-node/per-message lists are handled explicitly.
_RESULT_LISTS = ("vc_busy", "node_load", "latency_samples")
_RESULT_SCALARS = tuple(
    f.name
    for f in fields(SimulationResult)
    if f.name != "config" and f.name not in _RESULT_LISTS
)


def config_to_dict(config: SimConfig) -> dict:
    """Plain-dict form of a :class:`SimConfig` (JSON-safe)."""
    payload = asdict(config)
    payload["schema"] = _SCHEMA_VERSION
    payload["kind"] = "sim-config"
    return payload


def config_from_dict(payload: dict) -> SimConfig:
    """Rebuild a :class:`SimConfig` written by :func:`config_to_dict`."""
    if payload.get("kind") != "sim-config":
        raise ValueError("payload is not a sim-config")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported sim-config schema {payload.get('schema')!r}")
    fields = {k: v for k, v in payload.items() if k not in ("schema", "kind")}
    return SimConfig(**fields)


def pattern_to_dict(pattern: FaultPattern) -> dict:
    """Plain-dict form of a fault pattern (mesh dims + faulty nodes)."""
    return {
        "kind": "fault-pattern",
        "schema": _SCHEMA_VERSION,
        "width": pattern.mesh.width,
        "height": pattern.mesh.height,
        "faulty": sorted(pattern.faulty),
    }


def pattern_from_dict(payload: dict) -> FaultPattern:
    """Rebuild a fault pattern written by :func:`pattern_to_dict`.

    Validation (block model, connectivity) re-runs on load, so a
    hand-edited payload cannot smuggle in an unsupported layout.
    """
    if payload.get("kind") != "fault-pattern":
        raise ValueError("payload is not a fault-pattern")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported fault-pattern schema {payload.get('schema')!r}"
        )
    mesh = Mesh2D(payload["width"], payload["height"])
    return FaultPattern(mesh, frozenset(payload["faulty"]))


def result_to_dict(result: SimulationResult) -> dict:
    """Plain-dict form of a :class:`SimulationResult` (JSON-safe).

    Every stored field round-trips exactly — counters and latency sums
    are ints, the stat lists are lists of ints — so a result rebuilt by
    :func:`result_from_dict` is equal to the original field for field
    (derived properties like ``throughput`` follow).
    """
    payload = {
        "kind": "sim-result",
        "schema": _SCHEMA_VERSION,
        "config": config_to_dict(result.config),
    }
    for name in _RESULT_SCALARS:
        payload[name] = getattr(result, name)
    for name in _RESULT_LISTS:
        payload[name] = list(getattr(result, name))
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` written by :func:`result_to_dict`."""
    if payload.get("kind") != "sim-result":
        raise ValueError("payload is not a sim-result")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported sim-result schema {payload.get('schema')!r}"
        )
    kwargs = {name: payload[name] for name in _RESULT_SCALARS}
    kwargs.update({name: list(payload[name]) for name in _RESULT_LISTS})
    return SimulationResult(config=config_from_dict(payload["config"]), **kwargs)
