"""Reproduction of the IPPS 2007 comparative study of adaptive
fault-tolerant wormhole routing algorithms for 2-D meshes.

Top-level re-exports cover the common workflow::

    import random
    import repro

    mesh = repro.Mesh2D(10)
    faults = repro.generate_block_fault_pattern(mesh, 5, random.Random(1))
    sim = repro.Simulation(
        repro.SimConfig(width=10, injection_rate=0.002, on_deadlock="drain"),
        repro.make_algorithm("duato-nbc"),
        faults=faults,
    )
    result = sim.run()

The full surface lives in the subpackages: :mod:`repro.topology`,
:mod:`repro.faults`, :mod:`repro.simulator`, :mod:`repro.routing`,
:mod:`repro.traffic`, :mod:`repro.metrics`, :mod:`repro.core`,
:mod:`repro.analysis`, :mod:`repro.store` and :mod:`repro.experiments`.
"""

from repro.core.evaluator import Evaluator
from repro.faults.generator import generate_block_fault_pattern
from repro.faults.pattern import FaultPattern
from repro.routing.registry import ALGORITHM_NAMES, PAPER_ORDER, make_algorithm
from repro.simulator.config import SimConfig
from repro.simulator.engine import Simulation, SimulationResult
from repro.store import CachedEvaluator, ResultStore
from repro.topology.mesh import Mesh2D

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_NAMES",
    "CachedEvaluator",
    "Evaluator",
    "FaultPattern",
    "Mesh2D",
    "PAPER_ORDER",
    "ResultStore",
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "__version__",
    "generate_block_fault_pattern",
    "make_algorithm",
]
