"""Serving verbs: ``python -m repro.serve {query,reliability,api}``.

::

    # one-shot performance query against a campaign directory
    python -m repro.serve query runs/c1 --algorithm nhop --rate 0.01

    # allow the bounded-simulation fallback tier
    python -m repro.serve query runs/c1 --algorithm nhop --rate 0.08 \
        --simulate

    # Monte-Carlo mesh reliability (no campaign needed)
    python -m repro.serve reliability --width 10 --failure-rate 0.05 \
        --trials 2000 --workers 4

    # long-running JSON-over-HTTP API
    python -m repro.serve api runs/c1 --port 8707

``query`` exits 0 with an answer, 3 when no tier can serve the query
(printing the per-tier refusals), 2 on bad input.  ``query
--trace-out FILE`` records the tier-cascade trace spans (including any
``engine.run`` fallback span) to a span JSONL readable by
``python -m repro.obs spans``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.campaigns.db import CampaignDB

__all__ = ["main"]


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve.resolver import Query, Resolver, UnresolvedQueryError

    db = CampaignDB.open(args.root)
    resolver = Resolver(db, simulate=args.simulate)
    try:
        q = Query(
            algorithm=args.algorithm,
            rate=args.rate,
            metric=args.metric,
            n_faults=args.n_faults,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = recorder = None
    if args.trace_out is not None:
        from repro.obs.spans import SpanRecorder, Trace, trace_id_from

        recorder = SpanRecorder()
        trace = Trace(
            recorder, trace_id_from("serve-cli", q.to_dict())
        )
    try:
        with _query_span(trace, q) as child:
            answer = resolver.resolve(q, trace=child)
    except UnresolvedQueryError as exc:
        _write_trace(args, recorder)
        print(f"unresolved: {exc}", file=sys.stderr)
        return 3
    _write_trace(args, recorder)
    if args.json:
        print(json.dumps(
            {"query": q.to_dict(), "answer": answer.to_dict()}, indent=2
        ))
        return 0
    ci = "ci=n/a" if answer.to_dict()["ci"] is None else f"ci=±{answer.ci:.4g}"
    print(
        f"{q.metric} {answer.value:.4g} {ci} "
        f"[tier={answer.tier} n={answer.n_samples} "
        f"engine=v{answer.engine_version}]"
    )
    return 0


def _query_span(trace, q):
    """Root ``serve.query`` span around resolution, or a no-op scope."""
    from contextlib import nullcontext

    if trace is None:
        return nullcontext()
    return trace.span(
        "serve.query", algorithm=q.algorithm, rate=q.rate, metric=q.metric
    )


def _write_trace(args: argparse.Namespace, recorder) -> None:
    if recorder is None:
        return
    from repro.obs.spans import write_spans_jsonl

    count = write_spans_jsonl(args.trace_out, recorder.spans)
    print(f"[trace: {count} spans -> {args.trace_out}]", file=sys.stderr)


def _cmd_reliability(args: argparse.Namespace) -> int:
    from repro.serve.reliability import estimate

    try:
        est = estimate(
            args.width,
            height=args.height,
            failure_rate=args.failure_rate,
            trials=args.trials,
            seed=args.seed,
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(est.to_dict(), indent=2))
        return 0
    print(
        f"{est.width}x{est.height} mesh @ failure_rate={est.failure_rate:g}: "
        f"P(connected)={est.p_connected:.4f} "
        f"[{est.ci_low:.4f}, {est.ci_high:.4f}] "
        f"routable={est.routable_fraction:.4f} "
        f"(trials={est.trials} seed={est.seed})"
    )
    return 0


def _cmd_api(args: argparse.Namespace) -> int:
    from repro.serve.api import QueryServer

    db = CampaignDB.open(args.root)
    server = QueryServer(
        db, host=args.host, port=args.port, simulate=args.simulate
    )

    async def _run() -> None:
        await server.start()
        print(
            f"serving campaign {db.spec.name!r} on "
            f"http://{server.host}:{server.port}",
            file=sys.stderr,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Tiered performance answers over campaign grids.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_query = sub.add_parser(
        "query", help="answer one performance query from the tier cascade"
    )
    p_query.add_argument("root", type=Path, help="campaign directory")
    p_query.add_argument("--algorithm", required=True)
    p_query.add_argument("--rate", type=float, required=True,
                         help="injection rate (messages/node/cycle)")
    p_query.add_argument("--metric", default="latency",
                         help="metric name (default: latency)")
    p_query.add_argument("--n-faults", type=int, default=0,
                         help="faulty-router count (default: 0)")
    p_query.add_argument("--simulate", action="store_true",
                         help="enable the bounded-simulation fallback tier")
    p_query.add_argument("--json", action="store_true",
                         help="machine-readable answer")
    p_query.add_argument("--trace-out", type=Path, default=None,
                         help="write the tier-cascade trace spans to this "
                              "JSONL (render with `python -m repro.obs "
                              "spans FILE`)")
    p_query.set_defaults(fn=_cmd_query)

    p_rel = sub.add_parser(
        "reliability",
        help="Monte-Carlo connectivity/routability vs router failures",
    )
    p_rel.add_argument("--width", type=int, required=True)
    p_rel.add_argument("--height", type=int, default=None)
    p_rel.add_argument("--failure-rate", type=float, required=True,
                       help="independent per-router failure probability")
    p_rel.add_argument("--trials", type=int, default=1000)
    p_rel.add_argument("--seed", type=int, default=2007)
    p_rel.add_argument("--workers", type=int, default=1,
                       help="process-pool fanout (result is identical "
                            "for any worker count)")
    p_rel.add_argument("--json", action="store_true",
                       help="machine-readable estimate")
    p_rel.set_defaults(fn=_cmd_reliability)

    p_api = sub.add_parser(
        "api", help="serve /query and /reliability over HTTP"
    )
    p_api.add_argument("root", type=Path, help="campaign directory")
    p_api.add_argument("--host", default="127.0.0.1")
    p_api.add_argument("--port", type=int, default=8707)
    p_api.add_argument("--simulate", action="store_true",
                       help="enable the bounded-simulation fallback tier")
    p_api.set_defaults(fn=_cmd_api)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
