"""Stdlib-only JSON-over-HTTP serving of the tiered resolver.

``python -m repro.serve api CAMPAIGN --port N`` exposes:

``GET /healthz``
    Liveness + campaign identity.
``GET /metrics``
    The serving :class:`~repro.obs.telemetry.TelemetryRegistry`
    snapshot (per-tier counters, latency histograms) — the same JSON
    shape every other telemetry consumer reads.
``GET or POST /query``
    A performance query; parameters from the query string
    (``?algorithm=nhop&rate=0.01&metric=latency&n_faults=0``) or a JSON
    body with the same keys.  Answers are
    :meth:`~repro.serve.resolver.Answer.to_dict` payloads; a query no
    tier can serve is ``422`` with the per-tier refusals, malformed
    parameters are ``400``.
``POST /reliability``
    JSON body ``{width, failure_rate, trials?, seed?, height?,
    workers?}`` answered with a
    :meth:`~repro.serve.reliability.ReliabilityEstimate.to_dict`.
``GET /trace``
    The recorded trace spans for one request: ``?request=REQUEST_ID``
    (recomputes the trace id from the ``x-request-id`` — deterministic,
    no lookup table) or ``?trace=TRACE_ID`` directly.  Returns the
    spans plus their :func:`~repro.obs.spans.spans_merge_digest`.

The transport is deliberately minimal: ``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 exchange (one request per connection,
``Connection: close``), so serving needs nothing outside the standard
library.  Resolution itself is synchronous CPU work (and the resolver's
lazy fitting is not thread-safe), so requests are handed to a
single-thread executor — the asyncio loop stays responsive to accepts
and health checks while answers are computed in order.

Every response carries an ``x-request-id`` header: the client's own id
echoed back when it sent one (sanitized to ``[A-Za-z0-9._-]{1,64}``),
else a server-assigned ``req-<seq>``.  That id doubles as the trace
identity: each exchange opens an ``http.request`` span under
``trace_id_from("serve", request_id)``, the resolver hangs its
``tier.<name>`` cascade beneath it, and a bounded-simulation fallback
nests an ``engine.run`` span deeper still — so ``GET
/trace?request=ID`` shows one merged timeline from socket to simulator
(spans live in a bounded in-process :class:`~repro.obs.spans.
SpanRecorder`; oldest drop first).  The HTTP layer additionally
publishes per-request counters next to the resolver's tier metrics —
``serve.http.requests``, ``serve.http.status.<code>``,
``serve.http.latency_us``, and ``serve.http.query.tier.<tier>`` for
answered queries — so ``/metrics`` shows both the resolver's view
(which tier answered) and the transport's (status mix, wire latency).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import re
from urllib.parse import parse_qsl, urlsplit

from repro.campaigns.db import CampaignDB
from repro.core.evaluator import ENGINE_VERSION
from repro.obs.profile import clock
from repro.obs.spans import (
    SpanRecorder, Trace, spans_merge_digest, trace_id_from,
)
from repro.obs.telemetry import TelemetryRegistry
from repro.serve import reliability
from repro.serve.resolver import (
    LATENCY_BOUNDS, Query, Resolver, UnresolvedQueryError,
)

__all__ = ["QueryServer"]

_MAX_BODY = 1 << 20  # 1 MiB: generous for JSON queries, bounded anyway

#: Client-supplied request ids are echoed only when they match this
#: (header values land verbatim in the response and in logs).
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class _BadRequest(ValueError):
    """Malformed client input -> HTTP 400."""


def _parse_query_params(params: dict) -> Query:
    try:
        algorithm = str(params["algorithm"])
        rate = float(params["rate"])
    except KeyError as exc:
        raise _BadRequest(f"missing parameter {exc.args[0]!r}") from None
    except (TypeError, ValueError):
        raise _BadRequest("rate must be a number") from None
    try:
        return Query(
            algorithm=algorithm,
            rate=rate,
            metric=str(params.get("metric", "latency")),
            n_faults=int(params.get("n_faults", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise _BadRequest(str(exc)) from None


def _parse_reliability_params(params: dict) -> dict:
    try:
        kwargs = {
            "width": int(params["width"]),
            "failure_rate": float(params["failure_rate"]),
            "trials": int(params.get("trials", 1000)),
            "seed": int(params.get("seed", 2007)),
            "workers": int(params.get("workers", 1)),
        }
        if params.get("height") is not None:
            kwargs["height"] = int(params["height"])
    except KeyError as exc:
        raise _BadRequest(f"missing parameter {exc.args[0]!r}") from None
    except (TypeError, ValueError):
        raise _BadRequest(
            "width/height/trials/seed/workers must be integers, "
            "failure_rate a number"
        ) from None
    return kwargs


class QueryServer:
    """The serving process: one campaign, one resolver, one HTTP port.

    Parameters
    ----------
    db:
        Campaign backing the answers.
    host, port:
        Bind address; ``port=0`` picks a free port (tests read
        :attr:`port` after :meth:`start`).
    simulate:
        Enable the resolver's tier-4 bounded-simulation fallback.
    telemetry:
        Registry for serving metrics (a private one is created when
        omitted; exposed at ``/metrics`` either way).
    """

    def __init__(
        self,
        db: CampaignDB,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        simulate: bool = False,
        telemetry: TelemetryRegistry | None = None,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryRegistry()
        )
        self.resolver = Resolver(
            db, simulate=simulate, telemetry=self.telemetry
        )
        self._server: asyncio.AbstractServer | None = None
        # Single thread: resolution order == arrival order, and the
        # resolver's lazy surrogate/calibration fitting stays unshared.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-resolve"
        )
        # Monotonic request ordinal: the fallback x-request-id suffix
        # and the stamp on the serve.http.* instruments (the serving
        # registry's cycle axis, matching the resolver's convention).
        self._http_requests = 0
        # Bounded span store behind /trace; one trace per request id.
        self.spans = SpanRecorder(limit=2048)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (resolves ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._http_requests += 1
        seq = self._http_requests
        started = clock()
        request_id = f"req-{seq}"
        try:
            status, payload, request_id = await self._exchange(
                reader, request_id
            )
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # never kill the server on one request
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._observe_http(seq, status, payload, started)
        body = json.dumps(payload).encode("utf-8")
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            422: "Unprocessable Entity",
            500: "Internal Server Error",
        }.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"x-request-id: {request_id}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            + body
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    def _observe_http(
        self, request: int, status: int, payload: dict, started: float
    ) -> None:
        """Per-request transport metrics, visible at ``/metrics``."""
        elapsed_us = int((clock() - started) * 1e6)
        self.telemetry.counter("serve.http.requests").inc(request)
        self.telemetry.counter(f"serve.http.status.{status}").inc(request)
        self.telemetry.histogram(
            "serve.http.latency_us", LATENCY_BOUNDS
        ).observe(request, elapsed_us)
        answer = payload.get("answer") if isinstance(payload, dict) else None
        if isinstance(answer, dict) and "tier" in answer:
            self.telemetry.counter(
                f"serve.http.query.tier.{answer['tier']}"
            ).inc(request)

    async def _exchange(
        self, reader: asyncio.StreamReader, request_id: str
    ) -> tuple[int, dict, str]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            header = name.strip().lower()
            if header == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length") from None
            elif header == "x-request-id":
                client_id = value.strip()
                if _REQUEST_ID_RE.match(client_id):
                    request_id = client_id
        if content_length > _MAX_BODY:
            raise _BadRequest("request body too large")
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        url = urlsplit(target)
        params: dict = dict(parse_qsl(url.query))
        if body:
            try:
                decoded = json.loads(body)
            except json.JSONDecodeError:
                raise _BadRequest("request body is not valid JSON") from None
            if not isinstance(decoded, dict):
                raise _BadRequest("request body must be a JSON object")
            params.update(decoded)
        trace = Trace(self.spans, trace_id_from("serve", request_id))
        with trace.span(
            "http.request", method=method, path=url.path
        ) as req_trace:
            status, payload = await self._route(
                method, url.path, params, req_trace
            )
            req_trace.attrs["status"] = status
        return status, payload, request_id

    async def _route(
        self, method: str, path: str, params: dict, trace: Trace
    ) -> tuple[int, dict]:
        if path == "/healthz":
            return 200, {
                "ok": True,
                "campaign": self.db.spec.name,
                "engine_version": ENGINE_VERSION,
            }
        if path == "/metrics":
            return 200, self.telemetry.snapshot()
        if path == "/query":
            if method not in ("GET", "POST"):
                return 405, {"error": f"{method} not allowed on /query"}
            q = _parse_query_params(params)
            loop = asyncio.get_running_loop()
            try:
                answer = await loop.run_in_executor(
                    self._executor,
                    lambda: self.resolver.resolve(q, trace=trace),
                )
            except UnresolvedQueryError as exc:
                return 422, {
                    "error": "unresolved",
                    "query": q.to_dict(),
                    "refusals": exc.refusals,
                }
            return 200, {"query": q.to_dict(), "answer": answer.to_dict()}
        if path == "/reliability":
            if method != "POST":
                return 405, {
                    "error": f"{method} not allowed on /reliability"
                }
            kwargs = _parse_reliability_params(params)
            loop = asyncio.get_running_loop()
            est = await loop.run_in_executor(
                self._executor,
                lambda: reliability.estimate(
                    kwargs.pop("width"), **kwargs
                ),
            )
            return 200, est.to_dict()
        if path == "/trace":
            if method != "GET":
                return 405, {"error": f"{method} not allowed on /trace"}
            trace_id = params.get("trace")
            if not trace_id and params.get("request"):
                trace_id = trace_id_from("serve", str(params["request"]))
            if not trace_id:
                raise _BadRequest("pass ?request=REQUEST_ID or ?trace=ID")
            spans = self.spans.of_trace(str(trace_id))
            return 200, {
                "trace_id": trace_id,
                "spans": spans,
                "merge_digest": spans_merge_digest(spans),
            }
        return 404, {"error": f"unknown path {path!r}"}
