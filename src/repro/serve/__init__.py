"""`repro.serve` — tiered performance answers over campaign grids.

The first subsystem that sits *above* the simulator rather than beside
it: interactive questions ("what latency does config X have?") are
answered from the cheapest honest source — exact store hit, grid
surrogate, calibrated analytical model, and only then (opt-in) a
bounded simulation — each answer carrying ``{value, ci, tier,
engine_version}``.  A Monte-Carlo reliability endpoint answers mesh
connectivity/routability probabilities over the same fault machinery.

Layering rule (lint REP015): nothing under this package imports
:mod:`repro.simulator` directly — simulation happens only through
:class:`repro.store.cache.CachedEvaluator`, so every served run is
keyed, cached, and policy-correct.

See ``docs/serving.md`` for the tier contract and API schema.
"""

from repro.serve.resolver import (
    Answer,
    Query,
    Resolver,
    TIERS,
    UnresolvedQueryError,
)

__all__ = ["Answer", "Query", "Resolver", "TIERS", "UnresolvedQueryError"]
