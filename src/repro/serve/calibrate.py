"""Calibrate the analytical latency model against a campaign grid.

The M/G/1-style :class:`~repro.analysis.latency_model.
AnalyticalLatencyModel` is first-order: right shape, biased level (its
docstring documents the optimism near saturation).  Tier 3 of the
serving resolver closes that gap with a single per-algorithm
multiplicative **correction factor** fitted by least squares over the
campaign's *fault-free* grid points below the model's saturation rate:

    c_alg = argmin_c Σ (c · model(rate) − sim(rate))²
          = Σ model·sim / Σ model²

A scalar per algorithm is deliberate — it cannot overfit a handful of
grid points, and it preserves the model's rate-shape so the calibrated
curve stays monotone where the model is.  The fit residual (max
relative error of the calibrated model on its own fitting points) is
persisted and becomes the CI the resolver reports for tier-3 answers:
the honest statement is "model answers are good to about the fit
residual", not a sampling CI.

Calibrations persist as ``calibration.json`` next to the campaign
(inside :attr:`CampaignDB.root`) and are stamped with
``engine_version``; loading a calibration fitted against a different
engine raises :class:`StaleCalibrationError` so a recalibration is
forced rather than silently serving answers tuned to old semantics.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.latency_model import AnalyticalLatencyModel
from repro.campaigns.db import CampaignDB
from repro.campaigns.query import CampaignArray
from repro.core.evaluator import ENGINE_VERSION
from repro.serve.surrogate import GridSurrogate, SurrogateError
from repro.topology.mesh import Mesh2D

__all__ = [
    "Calibration",
    "CalibrationError",
    "StaleCalibrationError",
    "effective_vcs",
    "fit",
    "load",
    "load_or_fit",
    "model_for",
    "predict",
]

_SCHEMA_VERSION = 1
CALIBRATION_FILE = "calibration.json"


class CalibrationError(RuntimeError):
    """The grid cannot support a calibration (no usable points)."""


class StaleCalibrationError(CalibrationError):
    """A persisted calibration was fitted against a different engine."""


def effective_vcs(vcs_per_channel: int) -> int:
    """Effective adaptive VCs per direction for the analytical model.

    The paper's budgets reserve 4 VCs per physical channel for escape
    and class duties; the rest form the adaptive free pool a header can
    actually compete for (e.g. 24 per channel -> 20 effective, the
    model docstring's canonical value).  Floored at 1 for tiny test
    budgets.
    """
    return max(1, vcs_per_channel - 4)


@dataclass(frozen=True)
class Calibration:
    """Fitted per-algorithm correction of the analytical model."""

    campaign: str
    engine_version: int
    #: algorithm -> multiplicative correction factor.
    factors: dict[str, float]
    #: max relative error of the calibrated model on its fitting points.
    residual_rel: float
    #: (algorithm, rate) pairs the fit used, for provenance.
    fitted_points: tuple[tuple[str, float], ...]

    def to_dict(self) -> dict:
        return {
            "kind": "serve-calibration",
            "schema": _SCHEMA_VERSION,
            "campaign": self.campaign,
            "engine_version": self.engine_version,
            "factors": {a: self.factors[a] for a in sorted(self.factors)},
            "residual_rel": self.residual_rel,
            "fitted_points": [list(p) for p in self.fitted_points],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> Calibration:
        if payload.get("kind") != "serve-calibration":
            raise CalibrationError("payload is not a serve-calibration")
        if payload.get("schema") != _SCHEMA_VERSION:
            raise CalibrationError(
                f"unsupported calibration schema {payload.get('schema')!r}"
            )
        return cls(
            campaign=payload["campaign"],
            engine_version=payload["engine_version"],
            factors={a: float(c) for a, c in payload["factors"].items()},
            residual_rel=float(payload["residual_rel"]),
            fitted_points=tuple(
                (alg, float(rate)) for alg, rate in payload["fitted_points"]
            ),
        )

    def save(self, root: Path | str) -> Path:
        path = Path(root) / CALIBRATION_FILE
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path


def model_for(db: CampaignDB) -> AnalyticalLatencyModel:
    """The analytical model matching a campaign's configuration.

    Construction walks the whole channel-load map, so callers serving
    many queries should build this once and pass it to :func:`predict`.
    """
    cfg = db.spec.config
    return AnalyticalLatencyModel(
        Mesh2D(cfg.width, cfg.height),
        cfg.message_length,
        vcs_per_direction=effective_vcs(cfg.vcs_per_channel),
    )


def fit(db: CampaignDB, array: CampaignArray) -> Calibration:
    """Fit per-algorithm correction factors over the fault-free grid.

    Uses every fault-free latency grid point where both the simulation
    mean and the raw model prediction are finite and positive.  An
    algorithm with no usable point gets factor 1.0 (uncorrected) — the
    resolver still serves it, with the global residual as its CI.
    """
    model = model_for(db)
    surrogate = GridSurrogate(array, metrics=("latency",))
    factors: dict[str, float] = {}
    residual = 0.0
    fitted: list[tuple[str, float]] = []
    for alg in db.spec.algorithms:
        points = []
        try:
            series = surrogate.series(alg, 0, "latency")
        except SurrogateError:
            # All fault-free cells for this algorithm are holes: the
            # surrogate fitted no series at all.  Same outcome as a
            # series with no usable point — an uncorrected factor.
            series = ()
        for p in series:
            predicted = model.predict(p.rate).latency
            if (
                math.isfinite(p.mean)
                and p.mean > 0
                and math.isfinite(predicted)
                and predicted > 0
            ):
                points.append((p.rate, predicted, p.mean))
        if not points:
            factors[alg] = 1.0
            continue
        num = sum(m * s for _, m, s in points)
        den = sum(m * m for _, m, _ in points)
        c = num / den
        factors[alg] = c
        for rate, m, s in points:
            residual = max(residual, abs(c * m - s) / s)
            fitted.append((alg, rate))
    if not fitted:
        raise CalibrationError(
            f"campaign {db.spec.name!r} has no usable fault-free latency "
            "grid point below model saturation; cannot calibrate"
        )
    return Calibration(
        campaign=db.spec.name,
        engine_version=ENGINE_VERSION,
        factors=factors,
        residual_rel=residual,
        fitted_points=tuple(fitted),
    )


def load(root: Path | str) -> Calibration | None:
    """The persisted calibration of a campaign, or ``None`` if absent.

    Raises :class:`StaleCalibrationError` when the file exists but was
    fitted against a different ``ENGINE_VERSION``.
    """
    path = Path(root) / CALIBRATION_FILE
    if not path.exists():
        return None
    calibration = Calibration.from_dict(json.loads(path.read_text()))
    if calibration.engine_version != ENGINE_VERSION:
        raise StaleCalibrationError(
            f"calibration at {path} was fitted against engine_version="
            f"{calibration.engine_version}, current is {ENGINE_VERSION}; "
            "refit (serve does this automatically via load_or_fit)"
        )
    return calibration


def load_or_fit(db: CampaignDB, array: CampaignArray) -> Calibration:
    """Persisted calibration if current, else fit + persist a fresh one."""
    try:
        calibration = load(db.root)
    except StaleCalibrationError:
        calibration = None
    if calibration is None:
        calibration = fit(db, array)
        calibration.save(db.root)
    return calibration


def predict(
    db: CampaignDB,
    calibration: Calibration,
    algorithm: str,
    rate: float,
    *,
    model: AnalyticalLatencyModel | None = None,
) -> tuple[float, float, dict]:
    """``(value, ci, detail)`` of the calibrated model at *rate*.

    ``ci`` is ``residual_rel * value`` — the fit residual expressed in
    cycles, the honest "about this good" band for tier-3 answers.
    Raises :class:`CalibrationError` when the model itself saturates at
    *rate* (a calibrated infinity is still an infinity).  Pass a
    prebuilt *model* (:func:`model_for`) to skip per-call construction.
    """
    if algorithm not in calibration.factors:
        raise CalibrationError(
            f"calibration for campaign {calibration.campaign!r} covers "
            f"{sorted(calibration.factors)}, not {algorithm!r}"
        )
    if model is None:
        model = model_for(db)
    prediction = model.predict(rate)
    if prediction.saturated:
        raise CalibrationError(
            f"the analytical model saturates at rate {rate:g} "
            f"(bound {model.saturation_rate():.6g}); no finite answer"
        )
    factor = calibration.factors[algorithm]
    value = factor * prediction.latency
    return value, calibration.residual_rel * value, {
        "kind": "calibrated-model",
        "factor": factor,
        "raw_model_latency": prediction.latency,
        "saturation_rate": model.saturation_rate(),
        "residual_rel": calibration.residual_rel,
    }
