"""Grid surrogates: interpolate campaign arrays instead of simulating.

A :class:`GridSurrogate` is fitted once over a dense
:class:`~repro.campaigns.query.CampaignArray` and answers *"what is
metric M for algorithm A with F faulty routers at load rate R?"* by
piecewise-linear interpolation **in the injection rate only**, per
(algorithm, fault count) series — the one axis the paper sweeps
continuously.  Fault sets and repeats are pooled into one sample set
per grid point, whose mean and 95% CI half-width come from
:func:`repro.obs.converge.batch_means_ci` — the same Student-t
machinery the campaign query layer reduces with, so a surrogate answer
at a grid rate equals the campaign's own reduction.

Honesty rules (the serving tier contract, docs/serving.md):

* **No extrapolation.**  A rate outside ``[min(rates), max(rates)]`` of
  the fitted series raises :class:`HullError` — the resolver then falls
  through to the calibrated analytical model or a bounded simulation.
* **Conservative confidence.**  An interpolated value reports the
  *larger* of the two bracketing grid points' CI half-widths; the
  surrogate never claims tighter confidence than its data.
* **No silent holes.**  A grid point with zero finite samples is not
  part of the fitted series; interpolating across it raises
  :class:`HullError` naming the gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaigns.query import CampaignArray
from repro.obs.converge import batch_means_ci

__all__ = [
    "GridPoint",
    "GridSurrogate",
    "HullError",
    "SurrogateError",
    "fault_counts_of",
]


class SurrogateError(ValueError):
    """A query the surrogate cannot serve (unknown coordinate, no data)."""


class HullError(SurrogateError):
    """Refusal to extrapolate beyond the fitted grid hull."""


def fault_counts_of(array: CampaignArray) -> dict[str, int]:
    """``fault_case`` label -> fault count (``"f5/s1"`` -> ``5``).

    The labels are produced by
    :func:`repro.campaigns.spec.fault_case_label`; parsing them back is
    the inverse the whole query layer already relies on being stable.
    """
    counts = {}
    for label in array.coords["fault_case"]:
        head = label.split("/", 1)[0]
        if not head.startswith("f"):
            raise SurrogateError(f"unparseable fault_case label {label!r}")
        counts[label] = int(head[1:])
    return counts


@dataclass(frozen=True)
class GridPoint:
    """One fitted point: pooled samples of a (algorithm, n_faults, rate)."""

    rate: float
    mean: float
    ci: float  #: 95% half-width over pooled samples (NaN below 2 samples)
    n_samples: int


class GridSurrogate:
    """Piecewise-linear rate interpolation over a campaign array.

    Parameters
    ----------
    array:
        A dense :class:`~repro.campaigns.query.CampaignArray` (holes
        from ``allow_missing=True`` are tolerated and simply drop out
        of the pooled samples).
    metrics:
        Metrics to fit; defaults to every metric block the array holds.
    """

    def __init__(
        self, array: CampaignArray, metrics: tuple[str, ...] | None = None
    ) -> None:
        self.name = array.name
        self.metrics = tuple(metrics) if metrics is not None else tuple(
            sorted(array.values)
        )
        unknown = sorted(set(self.metrics) - set(array.values))
        if unknown:
            raise SurrogateError(
                f"array {array.name!r} holds no metric(s) {unknown}"
            )
        fault_counts = fault_counts_of(array)
        self.fault_counts = tuple(sorted(set(fault_counts.values())))
        self.algorithms = tuple(array.coords["algorithm"])
        #: (algorithm, n_faults, metric) -> rate-sorted tuple of GridPoint.
        self._series: dict[tuple[str, int, str], tuple[GridPoint, ...]] = {}
        rates = array.coords["rate"]
        for ia, alg in enumerate(self.algorithms):
            for metric in self.metrics:
                block = array.values[metric][ia]
                per_count: dict[int, list[GridPoint]] = {
                    n: [] for n in self.fault_counts
                }
                for ir, rate in enumerate(rates):
                    pooled: dict[int, list[float]] = {
                        n: [] for n in self.fault_counts
                    }
                    for ic, label in enumerate(array.coords["fault_case"]):
                        samples = [
                            v for v in block[ir][ic] if not math.isnan(v)
                        ]
                        pooled[fault_counts[label]].extend(samples)
                    for n, samples in sorted(pooled.items()):
                        if not samples:
                            continue  # hole: this point is not fitted
                        mean, ci = batch_means_ci(samples)
                        per_count[n].append(
                            GridPoint(float(rate), mean, ci, len(samples))
                        )
                for n, points in sorted(per_count.items()):
                    if points:
                        self._series[(alg, n, metric)] = tuple(
                            sorted(points, key=lambda p: p.rate)
                        )

    # ------------------------------------------------------------------
    def series(
        self, algorithm: str, n_faults: int, metric: str
    ) -> tuple[GridPoint, ...]:
        """The fitted rate series for one (algorithm, fault count, metric)."""
        try:
            return self._series[(algorithm, n_faults, metric)]
        except KeyError:
            known_algs = ", ".join(self.algorithms)
            raise SurrogateError(
                f"no fitted series for algorithm={algorithm!r} "
                f"n_faults={n_faults} metric={metric!r} (campaign "
                f"{self.name!r} covers algorithms [{known_algs}], "
                f"fault counts {list(self.fault_counts)}, metrics "
                f"{list(self.metrics)})"
            ) from None

    def hull(self, algorithm: str, n_faults: int, metric: str) -> tuple[float, float]:
        """``(min_rate, max_rate)`` of the fitted series."""
        points = self.series(algorithm, n_faults, metric)
        return points[0].rate, points[-1].rate

    def grid_point(
        self, algorithm: str, n_faults: int, rate: float, metric: str
    ) -> GridPoint | None:
        """The exact fitted point at *rate*, or ``None`` if off-grid."""
        for point in self.series(algorithm, n_faults, metric):
            if point.rate == rate:
                return point
        return None

    # ------------------------------------------------------------------
    def predict(
        self, algorithm: str, n_faults: int, rate: float, metric: str
    ) -> tuple[float, float, dict]:
        """``(value, ci, detail)`` at *rate*, interpolating if off-grid.

        Raises :class:`HullError` outside the fitted hull and
        :class:`SurrogateError` for coordinates the grid never covered.
        """
        points = self.series(algorithm, n_faults, metric)
        lo, hi = points[0].rate, points[-1].rate
        if rate < lo or rate > hi:
            raise HullError(
                f"rate {rate:g} is outside the fitted hull [{lo:g}, "
                f"{hi:g}] for algorithm={algorithm!r} n_faults="
                f"{n_faults}; the surrogate refuses to extrapolate"
            )
        for point in points:
            if point.rate == rate:
                return point.mean, point.ci, {
                    "kind": "grid-point",
                    "rate": point.rate,
                    "n_samples": point.n_samples,
                }
        # Bracket and lerp: points are rate-sorted and rate is interior.
        upper = next(i for i, p in enumerate(points) if p.rate > rate)
        a, b = points[upper - 1], points[upper]
        t = (rate - a.rate) / (b.rate - a.rate)
        value = a.mean + t * (b.mean - a.mean)
        # Conservative CI: NaN (unknown) if either bracket is unknown,
        # else the wider of the two.
        if math.isnan(a.ci) or math.isnan(b.ci):
            ci = float("nan")
        else:
            ci = max(a.ci, b.ci)
        return value, ci, {
            "kind": "interpolated",
            "bracket": [a.rate, b.rate],
            "t": t,
            "n_samples": a.n_samples + b.n_samples,
        }

    # ------------------------------------------------------------------
    def cross_validate(
        self, metric: str, *, algorithms: tuple[str, ...] | None = None
    ) -> list[dict]:
        """Held-out-point cross-validation of the interpolation.

        For every *interior* grid point of every fitted series, refit
        without it (trivial for a piecewise-linear surrogate: its
        neighbors bracket it) and predict the held-out rate.  Returns
        one row per held-out point with the absolute and relative error
        against the point's own pooled mean — the honesty evidence the
        surrogate test suite asserts bounds on.
        """
        rows = []
        for alg in algorithms or self.algorithms:
            for n in self.fault_counts:
                key = (alg, n, metric)
                points = self._series.get(key)
                if points is None or len(points) < 3:
                    continue
                for i in range(1, len(points) - 1):
                    held = points[i]
                    a, b = points[i - 1], points[i + 1]
                    t = (held.rate - a.rate) / (b.rate - a.rate)
                    predicted = a.mean + t * (b.mean - a.mean)
                    err = abs(predicted - held.mean)
                    rows.append({
                        "algorithm": alg,
                        "n_faults": n,
                        "metric": metric,
                        "rate": held.rate,
                        "actual": held.mean,
                        "predicted": predicted,
                        "abs_error": err,
                        "rel_error": (
                            err / abs(held.mean) if held.mean else math.inf
                        ),
                    })
        return rows
