"""``python -m repro.serve`` entry point."""

from repro.serve.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
