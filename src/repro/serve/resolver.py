"""The tiered query resolver: store → surrogate → model → simulation.

Every answer carries an explicit provenance + confidence contract,
``{value, ci, tier, engine_version}``:

tier ``"store"``
    The query names an exact grid point of the campaign and **every**
    declared sample of that point (all fault sets × repeats) is in the
    store.  The answer is the pooled mean with a Student-t 95% CI from
    :func:`repro.obs.converge.batch_means_ci` — identical to the
    campaign query layer's own reduction.  No engine work.
tier ``"surrogate"``
    The query is off-grid but inside the fitted hull: piecewise-linear
    interpolation per (algorithm, fault count) with the conservative CI
    of :class:`~repro.serve.surrogate.GridSurrogate`.  No engine work.
tier ``"model"``
    Outside the hull (or the grid has holes there): the calibrated
    M/G/1 model (:mod:`repro.serve.calibrate`), latency-only and
    fault-free-only, with the fit residual as the confidence band.
tier ``"simulation"``
    Opt-in (``simulate=True``): a bounded fresh simulation through
    :class:`~repro.store.cache.CachedEvaluator` with a per-run
    ``cycles_mode="auto"`` override, so the run stops at statistical
    convergence and the result lands in the store — the same question
    again is a cache hit, not a second simulation.

A query no tier can serve raises :class:`UnresolvedQueryError` listing
each tier's refusal reason; the resolver never invents an answer.

The resolver is observable with the engine's own tooling: pass a
:class:`~repro.obs.telemetry.TelemetryRegistry` and it maintains
per-tier hit counters (``serve.tier.<tier>``) and wall-latency
histograms (``serve.latency_us`` overall plus per tier), stamped with
the request index as the "cycle".  Pass a :class:`~repro.obs.spans.
Trace` to :meth:`Resolver.resolve` and the cascade additionally records
one ``tier.<name>`` span per attempted tier (attr ``outcome`` says
``answered`` or ``refused``) with an ``engine.run`` child span around
any bounded-simulation fallback — the serve half of the cross-layer
trace (:mod:`repro.obs.spans`).
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.campaigns.db import CampaignDB
from repro.campaigns.query import extract_metric, metric_names, query
from repro.core.evaluator import ENGINE_VERSION
from repro.obs.converge import batch_means_ci
from repro.obs.profile import clock
from repro.obs.telemetry import TelemetryRegistry
from repro.serve import calibrate
from repro.serve.surrogate import GridSurrogate, SurrogateError
from repro.store.cache import CachedEvaluator

__all__ = [
    "Answer",
    "Query",
    "Resolver",
    "TIERS",
    "TierRefusal",
    "UnresolvedQueryError",
]

#: Resolution order; also the fixed vocabulary of ``Answer.tier``.
TIERS = ("store", "surrogate", "model", "simulation")

#: Microsecond buckets of the serving-latency histograms.
LATENCY_BOUNDS = (
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
    1_000_000, 3_000_000, 10_000_000, 30_000_000,
)


@dataclass(frozen=True)
class Query:
    """One performance question: a metric at a point of the config space."""

    algorithm: str
    rate: float
    metric: str = "latency"
    n_faults: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.n_faults < 0:
            raise ValueError("n_faults must be non-negative")
        if self.metric not in metric_names():
            raise ValueError(
                f"unknown metric {self.metric!r}; choose from "
                f"{list(metric_names())}"
            )

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "rate": self.rate,
            "metric": self.metric,
            "n_faults": self.n_faults,
        }


@dataclass(frozen=True)
class Answer:
    """A served value with its provenance + confidence contract."""

    value: float
    ci: float  #: 95% half-width; NaN when honestly unknown
    tier: str
    engine_version: int
    n_samples: int
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe form: NaN confidence serializes as ``null``."""
        return {
            "value": self.value,
            "ci": None if math.isnan(self.ci) else self.ci,
            "tier": self.tier,
            "engine_version": self.engine_version,
            "n_samples": self.n_samples,
            "detail": self.detail,
        }


class TierRefusal(RuntimeError):
    """A tier declining a query (next tier is tried; not an error)."""


class UnresolvedQueryError(LookupError):
    """No tier could serve the query; refusal reasons per tier."""

    def __init__(self, query: Query, refusals: dict[str, str]) -> None:
        self.query = query
        self.refusals = refusals
        lines = "; ".join(f"{t}: {r}" for t, r in refusals.items())
        super().__init__(
            f"no tier can answer {query.to_dict()} ({lines})"
        )


class Resolver:
    """Answer queries against one campaign through the tier cascade.

    Parameters
    ----------
    db:
        The campaign whose grid (and store) backs the answers.
    simulate:
        Enable tier 4 — bounded fresh simulations through a
        :class:`~repro.store.cache.CachedEvaluator` with
        ``cycles_mode="auto"``.  Off by default: a serving process
        should opt into paying engine time.
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetryRegistry` for
        per-tier counters and latency histograms.
    """

    def __init__(
        self,
        db: CampaignDB,
        *,
        simulate: bool = False,
        telemetry: TelemetryRegistry | None = None,
    ) -> None:
        self.db = db
        self.simulate = simulate
        self.telemetry = telemetry
        self._requests = 0
        self._surrogate: GridSurrogate | None = None
        self._calibration: calibrate.Calibration | None = None
        self._model = None  # lazy AnalyticalLatencyModel (costly to build)
        self._evaluator: CachedEvaluator | None = None

    # ------------------------------------------------------------------
    # Lazy fitted state
    # ------------------------------------------------------------------
    def surrogate(self) -> GridSurrogate:
        """The grid surrogate, fitted on first use (holes tolerated)."""
        if self._surrogate is None:
            array = query(
                self.db, metrics=metric_names(), allow_missing=True
            )
            self._surrogate = GridSurrogate(array)
        return self._surrogate

    def calibration(self) -> calibrate.Calibration:
        """The persisted-or-fresh model calibration (engine-gated)."""
        if self._calibration is None:
            array = query(
                self.db, metrics=("latency",), allow_missing=True
            )
            self._calibration = calibrate.load_or_fit(self.db, array)
        return self._calibration

    def _cached_evaluator(self) -> CachedEvaluator:
        if self._evaluator is None:
            self._evaluator = CachedEvaluator(
                self.db.spec.config,
                seed=self.db.spec.seed,
                store=self.db.store,
            )
        return self._evaluator

    @property
    def simulations_run(self) -> int:
        """Engine invocations this resolver has caused (cache hits: 0)."""
        if self._evaluator is None:
            return 0
        return self._evaluator.stats.misses + self._evaluator.stats.bypassed

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------
    def _try_store(self, q: Query) -> Answer:
        spec = self.db.spec
        if q.rate not in spec.rates:
            raise SurrogateError(f"rate {q.rate:g} is not a grid rate")
        point = self.surrogate().grid_point(
            q.algorithm, q.n_faults, q.rate, q.metric
        )
        expected = (spec.fault_sets if q.n_faults else 1) * spec.repeats
        if point is None or point.n_samples < expected:
            have = 0 if point is None else point.n_samples
            raise SurrogateError(
                f"grid point incomplete in the store "
                f"({have}/{expected} samples)"
            )
        return Answer(
            value=point.mean,
            ci=point.ci,
            tier="store",
            engine_version=ENGINE_VERSION,
            n_samples=point.n_samples,
            detail={"kind": "grid-point", "rate": point.rate},
        )

    def _try_surrogate(self, q: Query) -> Answer:
        value, ci, detail = self.surrogate().predict(
            q.algorithm, q.n_faults, q.rate, q.metric
        )
        return Answer(
            value=value,
            ci=ci,
            tier="surrogate",
            engine_version=ENGINE_VERSION,
            n_samples=int(detail.get("n_samples", 0)),
            detail=detail,
        )

    def _try_model(self, q: Query) -> Answer:
        if q.metric != "latency":
            raise calibrate.CalibrationError(
                f"the analytical model predicts latency only, "
                f"not {q.metric!r}"
            )
        if q.n_faults != 0:
            raise calibrate.CalibrationError(
                "the analytical model covers the fault-free mesh only"
            )
        calibration = self.calibration()
        if self._model is None:
            self._model = calibrate.model_for(self.db)
        value, ci, detail = calibrate.predict(
            self.db, calibration, q.algorithm, q.rate, model=self._model
        )
        return Answer(
            value=value,
            ci=ci,
            tier="model",
            engine_version=ENGINE_VERSION,
            n_samples=len(
                [1 for alg, _ in calibration.fitted_points if alg == q.algorithm]
            ),
            detail=detail,
        )

    def _try_simulation(self, q: Query, trace=None) -> Answer:
        if not self.simulate:
            raise TierRefusal(
                "simulation fallback disabled (pass simulate=True)"
            )
        spec = self.db.spec
        evaluator = self._cached_evaluator()
        n_sets = spec.fault_sets if q.n_faults else 1
        case = evaluator.fault_case(q.n_faults, n_sets)
        samples = []
        cycles = 0
        span = (
            trace.span("engine.run") if trace is not None else nullcontext()
        )
        with span as engine_span:
            for fault_set, faults in enumerate(case.patterns):
                for repeat in range(spec.repeats):
                    result = evaluator.run_single(
                        q.algorithm,
                        faults,
                        injection_rate=q.rate,
                        set_index=fault_set * 1000 + repeat,
                        cycles_mode="auto",
                    )
                    cycles += result.measured_cycles + result.config.warmup
                    samples.append(extract_metric(result, q.metric))
            if engine_span is not None:
                engine_span.attrs["n_runs"] = len(samples)
                engine_span.attrs["cycles"] = cycles
        mean, ci = batch_means_ci(samples)
        stats = evaluator.stats
        return Answer(
            value=mean,
            ci=ci,
            tier="simulation",
            engine_version=ENGINE_VERSION,
            n_samples=len(samples),
            detail={
                "kind": "bounded-simulation",
                "cycles_mode": "auto",
                "cache": stats.as_dict(),
            },
        )

    # ------------------------------------------------------------------
    def resolve(self, q: Query, *, trace=None) -> Answer:
        """Serve *q* from the cheapest tier able to answer it.

        With *trace* (a :class:`~repro.obs.spans.Trace`), every
        attempted tier records a ``tier.<name>`` span under it; the
        simulation tier nests an ``engine.run`` span inside its own.
        """
        self._requests += 1
        request = self._requests
        started = clock()
        if self.telemetry is not None:
            self.telemetry.counter("serve.queries").inc(request)
        refusals: dict[str, str] = {}
        tiers = (
            ("store", self._try_store),
            ("surrogate", self._try_surrogate),
            ("model", self._try_model),
            ("simulation", self._try_simulation),
        )
        for tier, attempt in tiers:
            span = (
                trace.span(f"tier.{tier}")
                if trace is not None
                else nullcontext()
            )
            with span as tier_trace:
                try:
                    if tier == "simulation":
                        answer = self._try_simulation(q, trace=tier_trace)
                    else:
                        answer = attempt(q)
                except (
                    SurrogateError, calibrate.CalibrationError, TierRefusal
                ) as exc:
                    refusals[tier] = str(exc)
                    if tier_trace is not None:
                        tier_trace.attrs["outcome"] = "refused"
                    continue
                if tier_trace is not None:
                    tier_trace.attrs["outcome"] = "answered"
            self._observe(request, tier, started)
            return answer
        if self.telemetry is not None:
            self.telemetry.counter("serve.unresolved").inc(request)
        raise UnresolvedQueryError(q, refusals)

    def _observe(self, request: int, tier: str, started: float) -> None:
        if self.telemetry is None:
            return
        elapsed_us = int((clock() - started) * 1e6)
        self.telemetry.counter(f"serve.tier.{tier}").inc(request)
        self.telemetry.histogram(
            "serve.latency_us", LATENCY_BOUNDS
        ).observe(request, elapsed_us)
        self.telemetry.histogram(
            f"serve.latency_us.{tier}", LATENCY_BOUNDS
        ).observe(request, elapsed_us)
