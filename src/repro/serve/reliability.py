"""Monte-Carlo mesh reliability under random router failures.

Motivated by Safaei & ValadBeigi's probabilistic analysis of n-D-mesh
reliability (PAPERS.md): given that each router fails independently
with probability *p*, how likely is the surviving mesh to stay
**connected** (one component over all healthy nodes — the paper's
standing assumption for its fault patterns), and what fraction of
healthy source/destination pairs remains **routable** even when it is
not?

Estimation is seeded Monte-Carlo over failure sets, batched so the
trials fan out across :func:`repro.experiments.parallel.parallel_map`
workers.  Determinism contract: each batch derives its RNG from
``f"{seed}/reliability/{p:.9f}/{batch_index}"`` — a pure function of
the request, never of the process — so an estimate is bit-identical
across repeat calls **and across worker counts** (the batch
decomposition is fixed; workers only change who executes which batch).

Confidence comes from the Wilson score interval — the right choice for
Bernoulli proportions near 0 or 1, where the normal approximation's
interval collapses or escapes [0, 1].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.evaluator import ENGINE_VERSION
from repro.experiments.parallel import parallel_map
from repro.faults.connectivity import reachable_from
from repro.topology.mesh import Mesh2D

__all__ = [
    "ReliabilityEstimate",
    "estimate",
    "sweep",
    "wilson_interval",
]

#: Trials per worker batch; small enough that a few hundred trials
#: still spread across workers, large enough to amortize pool overhead.
BATCH_TRIALS = 250


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score 95% interval for a Bernoulli proportion.

    Well-behaved at the boundaries (0 or *trials* successes) where the
    Wald interval degenerates to a point.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2.0 * n)) / denom
    half = (
        z * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


def _routable_fraction(mesh: Mesh2D, faulty: set[int]) -> tuple[bool, float]:
    """``(connected, routable-pair fraction)`` of one failure set.

    Routability is the fraction of ordered healthy (source, destination)
    pairs joined by a fault-free path: with components of sizes ``s_i``
    over ``h`` healthy nodes, ``Σ s_i(s_i - 1) / (h(h - 1))``.  Fewer
    than two healthy nodes carry no traffic: disconnected, 0.0 —
    matching :func:`repro.faults.connectivity.is_connected`.
    """
    healthy = mesh.n_nodes - len(faulty)
    if healthy < 2:
        return False, 0.0
    seen: set[int] = set()
    pair_sum = 0
    for node in mesh.nodes():
        if node in faulty or node in seen:
            continue
        component = reachable_from(mesh, faulty, node)
        seen |= component
        size = len(component)
        pair_sum += size * (size - 1)
    return len(seen) == healthy and pair_sum == healthy * (
        healthy - 1
    ), pair_sum / (healthy * (healthy - 1))


def _reliability_batch(
    job: tuple[int, int, float, int, int, int],
) -> dict:
    """One worker batch of Monte-Carlo trials (picklable, pure).

    ``job = (width, height, failure_rate, seed, batch_index, trials)``;
    returns plain counters so results cross process boundaries as
    primitives.
    """
    width, height, failure_rate, seed, batch_index, trials = job
    mesh = Mesh2D(width, height)
    rng = random.Random(
        f"{seed}/reliability/{failure_rate:.9f}/{batch_index}"
    )
    connected = 0
    routable_sum = 0.0
    for _ in range(trials):
        faulty = {
            node
            for node in mesh.nodes()
            if rng.random() < failure_rate
        }
        ok, fraction = _routable_fraction(mesh, faulty)
        connected += ok
        routable_sum += fraction
    return {
        "trials": trials,
        "connected": connected,
        "routable_sum": routable_sum,
    }


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Monte-Carlo estimate of mesh survivability at one failure rate."""

    width: int
    height: int
    failure_rate: float
    trials: int
    seed: int
    #: P(healthy mesh is one connected component), with Wilson 95% CI.
    p_connected: float
    ci_low: float
    ci_high: float
    #: Mean fraction of healthy ordered pairs still joined by a path.
    routable_fraction: float
    #: Uniform answer schema with the performance tiers.
    engine_version: int = ENGINE_VERSION

    def to_dict(self) -> dict:
        return {
            "width": self.width,
            "height": self.height,
            "failure_rate": self.failure_rate,
            "trials": self.trials,
            "seed": self.seed,
            "p_connected": self.p_connected,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "routable_fraction": self.routable_fraction,
            "engine_version": self.engine_version,
        }


def estimate(
    width: int,
    *,
    height: int | None = None,
    failure_rate: float,
    trials: int = 1000,
    seed: int = 2007,
    workers: int = 1,
) -> ReliabilityEstimate:
    """Estimate connectivity/routability of a mesh at *failure_rate*.

    Deterministic in ``(width, height, failure_rate, trials, seed)``
    and independent of *workers* — batching is fixed by the request.
    """
    if not 0.0 <= failure_rate <= 1.0:
        raise ValueError("failure_rate must lie in [0, 1]")
    if trials < 1:
        raise ValueError("trials must be positive")
    height = width if height is None else height
    jobs = []
    remaining = trials
    batch_index = 0
    while remaining > 0:
        batch = min(BATCH_TRIALS, remaining)
        jobs.append(
            (width, height, failure_rate, seed, batch_index, batch)
        )
        remaining -= batch
        batch_index += 1
    outputs = parallel_map(
        _reliability_batch, jobs, workers, label="reliability"
    )
    connected = sum(o["connected"] for o in outputs)
    routable_sum = sum(o["routable_sum"] for o in outputs)
    low, high = wilson_interval(connected, trials)
    return ReliabilityEstimate(
        width=width,
        height=height,
        failure_rate=failure_rate,
        trials=trials,
        seed=seed,
        p_connected=connected / trials,
        ci_low=low,
        ci_high=high,
        routable_fraction=routable_sum / trials,
    )


def sweep(
    width: int,
    failure_rates,
    *,
    height: int | None = None,
    trials: int = 1000,
    seed: int = 2007,
    workers: int = 1,
) -> list[ReliabilityEstimate]:
    """One :func:`estimate` per failure rate (shared seed discipline)."""
    return [
        estimate(
            width,
            height=height,
            failure_rate=rate,
            trials=trials,
            seed=seed,
            workers=workers,
        )
        for rate in failure_rates
    ]
