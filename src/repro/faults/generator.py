"""Random and deterministic fault-pattern generators.

The paper randomly generates faulty nodes "subject to the fault model"
(block regions, network stays connected).  :func:`generate_block_fault_pattern`
implements that: nodes are drawn uniformly one at a time; after each draw
the set is block-closed; draws whose closure would overshoot the target
fault count (or disconnect the mesh) are rejected and redrawn.
"""

from __future__ import annotations

import random

from repro.faults.connectivity import is_connected
from repro.faults.pattern import FaultPattern
from repro.faults.regions import FaultRegion, block_closure
from repro.topology.mesh import Mesh2D


class FaultPatternError(RuntimeError):
    """Raised when a requested fault pattern cannot be generated."""


def generate_block_fault_pattern(
    mesh: Mesh2D,
    n_faults: int,
    rng: random.Random,
    *,
    max_tries: int = 10_000,
) -> FaultPattern:
    """Draw a random block-model pattern with exactly *n_faults* faulty nodes.

    Parameters
    ----------
    mesh:
        Target mesh.
    n_faults:
        Exact number of faulty nodes in the returned pattern.  ``0`` yields
        the fault-free pattern.
    rng:
        Source of randomness (a seeded :class:`random.Random` for
        reproducible fault sets).
    max_tries:
        Total rejected draws allowed before giving up with
        :class:`FaultPatternError`.
    """
    if n_faults < 0:
        raise ValueError("n_faults must be non-negative")
    if n_faults == 0:
        return FaultPattern.fault_free(mesh)
    if n_faults > mesh.n_nodes - 2:
        raise FaultPatternError(
            f"cannot leave a connected healthy sub-mesh with {n_faults} "
            f"faults in a mesh of {mesh.n_nodes} nodes"
        )

    faulty: set[int] = set()
    tries = 0
    while len(faulty) < n_faults:
        if tries >= max_tries:
            raise FaultPatternError(
                f"failed to build a {n_faults}-fault block pattern after "
                f"{max_tries} rejected draws"
            )
        candidate = rng.randrange(mesh.n_nodes)
        if candidate in faulty:
            tries += 1
            continue
        closed = block_closure(mesh, faulty | {candidate})
        if len(closed) > n_faults or not is_connected(mesh, closed):
            tries += 1
            continue
        faulty = closed
    return FaultPattern(mesh, faulty)


def pattern_from_nodes(mesh: Mesh2D, nodes: set[int]) -> FaultPattern:
    """Pattern from explicit faulty nodes, block-closing them as needed.

    Unlike the :class:`FaultPattern` constructor this *repairs* the set by
    taking its block closure instead of rejecting non-block inputs.
    """
    return FaultPattern(mesh, frozenset(block_closure(mesh, set(nodes))))


def pattern_from_rectangles(
    mesh: Mesh2D, rectangles: list[FaultRegion]
) -> FaultPattern:
    """Pattern covering the given rectangles (coalescing any that touch)."""
    nodes: set[int] = set()
    for rect in rectangles:
        if not (
            mesh.in_bounds(rect.x0, rect.y0) and mesh.in_bounds(rect.x1, rect.y1)
        ):
            raise ValueError(f"rectangle {rect} outside {mesh!r}")
        nodes.update(rect.nodes(mesh))
    return pattern_from_nodes(mesh, nodes)


def figure6_fault_pattern(mesh: Mesh2D) -> FaultPattern:
    """The fixed fault layout of the paper's Figure 6.

    The paper describes "three fault regions overlapping in a row ...
    a block fault region with height 3 and width 2, and two block fault
    regions with height and width 1".  Exact placement is unspecified
    [INTERP]: we center the 2x3 block and put the two 1x1 regions in the
    same rows so that their f-rings overlap the block's f-ring row-wise,
    keeping every region away from the mesh edge (closed rings).
    """
    if mesh.width < 8 or mesh.height < 6:
        raise ValueError("figure-6 layout needs a mesh of at least 8x6")
    cx = mesh.width // 2 - 1
    cy = mesh.height // 2 - 1
    block = FaultRegion(cx, cy - 1, cx + 1, cy + 1)  # width 2, height 3
    # The 1x1 regions sit two columns off the block: far enough not to
    # coalesce with it, close enough that their f-rings share the block
    # ring's side columns.
    left = FaultRegion(cx - 2, cy, cx - 2, cy)
    right = FaultRegion(cx + 3, cy, cx + 3, cy)
    return pattern_from_rectangles(mesh, [block, left, right])
