"""The :class:`FaultPattern` — a validated, queryable fault configuration.

A pattern bundles the faulty-node set with its derived structure (block
regions, f-rings, per-node ring membership) and precomputes the lookups the
router hot path needs (:attr:`FaultPattern.faulty_mask`).
"""

from __future__ import annotations

from functools import cached_property

from repro.faults.connectivity import is_connected
from repro.faults.regions import FaultRegion, block_closure, coalesce_regions
from repro.faults.rings import FaultRing, build_ring
from repro.topology.mesh import Mesh2D


class FaultPattern:
    """A static set of faulty nodes satisfying the block fault model.

    Parameters
    ----------
    mesh:
        The mesh the faults live in.
    faulty:
        Faulty node ids.  Must already satisfy the block model (every
        8-connected component fills its bounding rectangle); use
        :func:`repro.faults.regions.block_closure` or the generators in
        :mod:`repro.faults.generator` to obtain such a set.
    check_connected:
        Verify that the healthy sub-mesh is connected (the paper's
        standing assumption).  Disable only in tests.
    """

    __slots__ = (
        "mesh",
        "faulty",
        "regions",
        "rings",
        "faulty_mask",
        "_region_index_of",
        "_rings_of_node",
        "__dict__",
    )

    def __init__(
        self,
        mesh: Mesh2D,
        faulty: set[int] | frozenset[int],
        *,
        check_connected: bool = True,
    ) -> None:
        faulty = frozenset(faulty)
        for node in faulty:
            if not 0 <= node < mesh.n_nodes:
                raise ValueError(f"faulty node {node} outside the mesh")
        if block_closure(mesh, set(faulty)) != faulty:
            raise ValueError(
                "faulty set violates the block fault model; apply "
                "block_closure() first"
            )
        if check_connected and faulty and not is_connected(mesh, set(faulty)):
            raise ValueError("fault pattern disconnects the mesh")

        self.mesh = mesh
        self.faulty = faulty
        self.regions: tuple[FaultRegion, ...] = tuple(
            coalesce_regions(mesh, set(faulty))
        )
        self.rings: tuple[FaultRing, ...] = tuple(
            build_ring(mesh, region) for region in self.regions
        )

        # Hot-path mask: faulty_mask[node] -> bool.
        mask = [False] * mesh.n_nodes
        for node in faulty:
            mask[node] = True
        self.faulty_mask: list[bool] = mask

        region_index_of: dict[int, int] = {}
        for i, region in enumerate(self.regions):
            for node in region.nodes(mesh):
                region_index_of[node] = i
        self._region_index_of = region_index_of

        rings_of_node: dict[int, list[int]] = {}
        for i, ring in enumerate(self.rings):
            for node in ring.nodes:
                rings_of_node.setdefault(node, []).append(i)
        self._rings_of_node: dict[int, tuple[int, ...]] = {
            node: tuple(idxs) for node, idxs in rings_of_node.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @classmethod
    def fault_free(cls, mesh: Mesh2D) -> FaultPattern:
        """The empty (fault-free) pattern."""
        return cls(mesh, frozenset())

    @property
    def n_faulty(self) -> int:
        return len(self.faulty)

    @property
    def fault_fraction(self) -> float:
        """Fraction of mesh nodes that are faulty."""
        return len(self.faulty) / self.mesh.n_nodes

    @cached_property
    def healthy_nodes(self) -> tuple[int, ...]:
        """Ids of all non-faulty nodes."""
        return tuple(n for n in self.mesh.nodes() if not self.faulty_mask[n])

    @cached_property
    def ring_nodes(self) -> frozenset[int]:
        """All nodes lying on at least one f-ring/f-chain."""
        return frozenset(self._rings_of_node)

    def is_faulty(self, node: int) -> bool:
        return self.faulty_mask[node]

    def region_of(self, faulty_node: int) -> int:
        """Index (into :attr:`regions`) of the region covering a faulty node."""
        return self._region_index_of[faulty_node]

    def rings_at(self, node: int) -> tuple[int, ...]:
        """Indices (into :attr:`rings`) of the rings *node* lies on."""
        return self._rings_of_node.get(node, ())

    def ring_around(self, faulty_node: int) -> FaultRing:
        """The ring surrounding the region that covers *faulty_node*."""
        return self.rings[self._region_index_of[faulty_node]]

    def on_ring_of(self, node: int, faulty_node: int) -> bool:
        """Whether *node* lies on the ring around *faulty_node*'s region."""
        return self._region_index_of[faulty_node] in self.rings_at(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPattern({self.mesh!r}, n_faulty={self.n_faulty}, "
            f"regions={len(self.regions)})"
        )
