"""Connectivity checks among fault-free nodes.

The paper assumes fault patterns "do not disconnect the network": every
pair of non-faulty nodes must be joined by a fault-free path.
"""

from __future__ import annotations

from collections import deque

from repro.topology.mesh import Mesh2D


def reachable_from(mesh: Mesh2D, faulty: set[int], start: int) -> set[int]:
    """Non-faulty nodes reachable from *start* over fault-free links."""
    if start in faulty:
        raise ValueError(f"start node {start} is faulty")
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for nb in mesh.neighbor_table(node):
            if nb >= 0 and nb not in faulty and nb not in seen:
                seen.add(nb)
                queue.append(nb)
    return seen


def is_connected(mesh: Mesh2D, faulty: set[int]) -> bool:
    """Whether the fault-free part of the mesh is one connected component.

    A mesh with fewer than two healthy nodes is considered disconnected
    (it cannot carry any traffic).
    """
    healthy = mesh.n_nodes - len(faulty)
    if healthy < 2:
        return False
    start = next(n for n in mesh.nodes() if n not in faulty)
    return len(reachable_from(mesh, faulty, start)) == healthy
