"""Block (convex) fault regions and their closure.

The paper (and Boppana–Chalasani [1]) use the *block fault model*: the set
of faulty nodes is a union of completely-filled rectangles, pairwise
separated by at least one row/column of fault-free nodes so that each
rectangle has its own fault-free ring around it.

:func:`block_closure` turns an arbitrary faulty-node set into the smallest
block-model superset: connected components under 8-adjacency (so that
diagonally-adjacent faults merge, keeping f-rings fault-free) are extended
to their bounding rectangles, iterating to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.mesh import Mesh2D


@dataclass(frozen=True, order=True)
class FaultRegion:
    """A rectangular fault region: ``x0 <= x <= x1``, ``y0 <= y <= y1``."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x0 > self.x1 or self.y0 > self.y1:
            raise ValueError(f"degenerate fault region {self!r}")

    @property
    def width(self) -> int:
        return self.x1 - self.x0 + 1

    @property
    def height(self) -> int:
        return self.y1 - self.y0 + 1

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    def contains(self, x: int, y: int) -> bool:
        """Whether coordinate ``(x, y)`` lies inside the region."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def nodes(self, mesh: Mesh2D) -> list[int]:
        """Node ids covered by the region."""
        return [
            mesh.node_id(x, y)
            for y in range(self.y0, self.y1 + 1)
            for x in range(self.x0, self.x1 + 1)
        ]

    def touches_boundary(self, mesh: Mesh2D) -> bool:
        """Whether the region touches the mesh edge (its ring is a chain)."""
        return (
            self.x0 == 0
            or self.y0 == 0
            or self.x1 == mesh.width - 1
            or self.y1 == mesh.height - 1
        )

    def chebyshev_adjacent(self, other: FaultRegion) -> bool:
        """Whether the rectangles touch or overlap, diagonals included.

        Regions this close must coalesce: otherwise one region's f-ring
        would pass through the other region's faulty nodes.
        """
        return (
            self.x0 <= other.x1 + 1
            and other.x0 <= self.x1 + 1
            and self.y0 <= other.y1 + 1
            and other.y0 <= self.y1 + 1
        )

    def merge(self, other: FaultRegion) -> FaultRegion:
        """Smallest rectangle covering both regions."""
        return FaultRegion(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )


def _components_8adjacent(mesh: Mesh2D, faulty: set[int]) -> list[set[int]]:
    """Connected components of *faulty* under 8-adjacency (Chebyshev 1)."""
    remaining = set(faulty)
    components: list[set[int]] = []
    while remaining:
        seed = remaining.pop()
        component = {seed}
        frontier = [seed]
        while frontier:
            node = frontier.pop()
            x, y = mesh.coordinates(node)
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dx == 0 and dy == 0:
                        continue
                    nx, ny = x + dx, y + dy
                    if not mesh.in_bounds(nx, ny):
                        continue
                    nb = mesh.node_id(nx, ny)
                    if nb in remaining:
                        remaining.discard(nb)
                        component.add(nb)
                        frontier.append(nb)
        components.append(component)
    return components


def _bounding_region(mesh: Mesh2D, nodes: set[int]) -> FaultRegion:
    xs, ys = zip(*(mesh.coordinates(n) for n in nodes))
    return FaultRegion(min(xs), min(ys), max(xs), max(ys))


def block_closure(mesh: Mesh2D, faulty: set[int]) -> set[int]:
    """Smallest block-fault-model superset of *faulty*.

    Iterates 8-adjacent component detection + bounding-box fill until
    stable.  Returns a new set; the input is not modified.
    """
    current = set(faulty)
    while True:
        grown = set(current)
        for component in _components_8adjacent(mesh, current):
            grown.update(_bounding_region(mesh, component).nodes(mesh))
        if grown == current:
            return current
        current = grown


def coalesce_regions(mesh: Mesh2D, faulty: set[int]) -> list[FaultRegion]:
    """Decompose a *block-model* faulty set into its rectangular regions.

    Raises :class:`ValueError` if *faulty* is not already block-closed
    (i.e. if any component's bounding rectangle is not completely faulty)
    — callers should apply :func:`block_closure` first.
    """
    regions = []
    for component in _components_8adjacent(mesh, faulty):
        region = _bounding_region(mesh, component)
        if region.n_nodes != len(component):
            raise ValueError(
                f"faulty set is not block-closed: component bounding box "
                f"{region} has {region.n_nodes} nodes but only "
                f"{len(component)} are faulty"
            )
        regions.append(region)
    regions.sort()
    return regions
