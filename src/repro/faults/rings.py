"""Fault rings (f-rings) and fault chains (f-chains).

The f-ring of a rectangular fault region is the cycle of fault-free nodes
at Chebyshev distance 1 around the region (Boppana–Chalasani [1]).  When
the region touches the mesh boundary the cycle is cut open and the result
is an f-chain.  Consecutive ring nodes are always mesh-adjacent, so a
message can physically walk the ring.

Ring nodes are stored in **counter-clockwise** order (x to the east,
y to the north).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.regions import FaultRegion
from repro.topology.mesh import Mesh2D


@dataclass(frozen=True)
class FaultRing:
    """An f-ring (``closed=True``) or f-chain (``closed=False``)."""

    region: FaultRegion
    nodes: tuple[int, ...]
    closed: bool
    _index: dict[int, int] = field(repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._index.update({node: i for i, node in enumerate(self.nodes)})

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._index

    def position(self, node: int) -> int:
        """Index of *node* in counter-clockwise ring order."""
        return self._index[node]

    def next_ccw(self, node: int) -> int:
        """Next ring node counter-clockwise, or ``-1`` past a chain end."""
        i = self._index[node] + 1
        if i == len(self.nodes):
            return self.nodes[0] if self.closed else -1
        return self.nodes[i]

    def next_cw(self, node: int) -> int:
        """Next ring node clockwise, or ``-1`` past a chain end."""
        i = self._index[node] - 1
        if i < 0:
            return self.nodes[-1] if self.closed else -1
        return self.nodes[i]

    def next_node(self, node: int, clockwise: bool) -> int:
        """Ring successor of *node* in the given orientation (``-1`` = end)."""
        return self.next_cw(node) if clockwise else self.next_ccw(node)

    def corner_nodes(self, mesh: Mesh2D) -> tuple[int, ...]:
        """The ring's corner nodes (diagonal to the region's corners).

        The paper's Section 5.2 singles these out: "performance
        degradation ... is mainly related to some bottlenecks ...
        especially at the corners of fault rings".  Corners that fall
        outside the mesh (f-chains) are omitted.
        """
        r = self.region
        corners = []
        for x, y in (
            (r.x0 - 1, r.y0 - 1),
            (r.x1 + 1, r.y0 - 1),
            (r.x1 + 1, r.y1 + 1),
            (r.x0 - 1, r.y1 + 1),
        ):
            if mesh.in_bounds(x, y):
                node = mesh.node_id(x, y)
                if node in self._index:
                    corners.append(node)
        return tuple(corners)


def _perimeter_ccw(x0: int, y0: int, x1: int, y1: int) -> list[tuple[int, int]]:
    """Counter-clockwise perimeter cells of rectangle ``[x0..x1]x[y0..y1]``.

    The rectangle always has width, height >= 3 here (a fault region grown
    by one in every direction), so the four edge runs never degenerate.
    """
    cells = [(x, y0) for x in range(x0, x1 + 1)]
    cells += [(x1, y) for y in range(y0 + 1, y1 + 1)]
    cells += [(x, y1) for x in range(x1 - 1, x0 - 1, -1)]
    cells += [(x0, y) for y in range(y1 - 1, y0, -1)]
    return cells


def build_ring(mesh: Mesh2D, region: FaultRegion) -> FaultRing:
    """Construct the f-ring/f-chain around *region*.

    Raises :class:`ValueError` when the region splits the would-be ring in
    two (the region spans the full mesh width or height), because such a
    region disconnects the network and is outside the paper's fault model.
    """
    perimeter = _perimeter_ccw(
        region.x0 - 1, region.y0 - 1, region.x1 + 1, region.y1 + 1
    )
    in_bounds = [mesh.in_bounds(x, y) for x, y in perimeter]
    if all(in_bounds):
        nodes = tuple(mesh.node_id(x, y) for x, y in perimeter)
        return FaultRing(region=region, nodes=nodes, closed=True)

    # Open chain: the out-of-bounds cells must form one contiguous run in
    # the cyclic order; rotate so the surviving arc is contiguous.
    n = len(perimeter)
    # Find a transition from out-of-bounds to in-bounds: start of the arc.
    starts = [
        i for i in range(n) if in_bounds[i] and not in_bounds[i - 1]
    ]
    if len(starts) != 1:
        raise ValueError(
            f"fault region {region} splits its ring into {len(starts)} "
            "chains; the region disconnects the mesh"
        )
    start = starts[0]
    arc = []
    for k in range(n):
        i = (start + k) % n
        if not in_bounds[i]:
            break
        arc.append(perimeter[i])
    nodes = tuple(mesh.node_id(x, y) for x, y in arc)
    return FaultRing(region=region, nodes=nodes, closed=False)
