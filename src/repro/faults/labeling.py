"""Boura–Das node labeling (safe / unsafe / faulty).

Boura & Das [7] identify nodes that "may cause routing difficulty" with a
labeling rule; messages then route adaptively through the remaining healthy
region.  The standard rule (used here) is the fixpoint of:

    a non-faulty node is **unsafe** if at least two of its neighbors are
    faulty or unsafe.

Unsafe nodes still source and sink their own traffic but are avoided as
intermediate hops by the fault-tolerant Boura algorithm.
"""

from __future__ import annotations

from enum import IntEnum

from repro.topology.mesh import Mesh2D


class NodeStatus(IntEnum):
    SAFE = 0
    UNSAFE = 1
    FAULTY = 2


def boura_labeling(
    mesh: Mesh2D, faulty: set[int] | frozenset[int]
) -> list[NodeStatus]:
    """Per-node status after iterating the unsafe rule to fixpoint."""
    status = [NodeStatus.SAFE] * mesh.n_nodes
    for node in faulty:
        status[node] = NodeStatus.FAULTY

    # Worklist fixpoint: re-examine a node whenever a neighbor degrades.
    pending = [n for n in mesh.nodes() if status[n] == NodeStatus.SAFE]
    while pending:
        next_pending = []
        changed = False
        for node in pending:
            bad = sum(
                1
                for nb in mesh.neighbor_table(node)
                if nb >= 0 and status[nb] != NodeStatus.SAFE
            )
            if bad >= 2:
                status[node] = NodeStatus.UNSAFE
                changed = True
            else:
                next_pending.append(node)
        if not changed:
            break
        pending = next_pending
    return status


def unsafe_nodes(mesh: Mesh2D, faulty: set[int] | frozenset[int]) -> set[int]:
    """Convenience wrapper returning just the unsafe node ids."""
    status = boura_labeling(mesh, faulty)
    return {n for n in mesh.nodes() if status[n] == NodeStatus.UNSAFE}
