"""Fault models for mesh networks.

Implements the paper's fault assumptions (Section 2.2):

* only *node* failures (links of a failed node are failed with it),
* faults are static, non-malicious, and never disconnect the network,
* adjacent faults coalesce into rectangular **block (convex) fault
  regions**,
* each region is surrounded by a **fault ring** (f-ring) of fault-free
  nodes — or an open **fault chain** (f-chain) when the region touches the
  mesh boundary — used by the Boppana–Chalasani scheme to route messages
  around the region.
"""

from repro.faults.connectivity import is_connected, reachable_from
from repro.faults.generator import (
    FaultPatternError,
    figure6_fault_pattern,
    generate_block_fault_pattern,
    pattern_from_nodes,
    pattern_from_rectangles,
)
from repro.faults.labeling import NodeStatus, boura_labeling
from repro.faults.pattern import FaultPattern
from repro.faults.regions import FaultRegion, block_closure, coalesce_regions
from repro.faults.rings import FaultRing, build_ring

__all__ = [
    "FaultPattern",
    "FaultPatternError",
    "FaultRegion",
    "FaultRing",
    "NodeStatus",
    "block_closure",
    "boura_labeling",
    "build_ring",
    "coalesce_regions",
    "figure6_fault_pattern",
    "generate_block_fault_pattern",
    "is_connected",
    "pattern_from_nodes",
    "pattern_from_rectangles",
    "reachable_from",
]
