"""General k-ary n-dimensional mesh.

The simulator itself runs on :class:`~repro.topology.mesh.Mesh2D`; this
class carries the *n*-dimensional generalizations the paper quotes for the
hop-based virtual-channel budgets:

* PHop needs ``n(k-1) + 1`` buffer classes,
* NHop needs ``1 + floor(n(k-1) / 2)`` buffer classes,

and is exercised by property tests of the addressing/labeling math.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import product


class KAryNMesh:
    """A mesh with ``n`` dimensions of radix ``k`` (no wrap-around)."""

    __slots__ = ("radix", "dimensions", "n_nodes")

    def __init__(self, radix: int, dimensions: int) -> None:
        if radix < 2:
            raise ValueError("radix must be at least 2")
        if dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        self.radix = radix
        self.dimensions = dimensions
        self.n_nodes = radix**dimensions

    # ------------------------------------------------------------------
    # Addressing: mixed-radix little-endian (dimension 0 varies fastest)
    # ------------------------------------------------------------------
    def node_id(self, coords: tuple[int, ...]) -> int:
        """Dense id of the node at *coords*."""
        if len(coords) != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions} coordinates, got {len(coords)}"
            )
        node = 0
        for c in reversed(coords):
            if not 0 <= c < self.radix:
                raise ValueError(f"coordinate {c} outside radix {self.radix}")
            node = node * self.radix + c
        return node

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Coordinate vector of *node*."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside mesh with {self.n_nodes} nodes")
        coords = []
        for _ in range(self.dimensions):
            coords.append(node % self.radix)
            node //= self.radix
        return tuple(coords)

    def nodes(self) -> range:
        return range(self.n_nodes)

    def coordinates_iter(self) -> Iterator[tuple[int, ...]]:
        """All coordinate vectors, in node-id order."""
        for rev in product(range(self.radix), repeat=self.dimensions):
            yield tuple(reversed(rev))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def diameter(self) -> int:
        """``n * (k - 1)``."""
        return self.dimensions * (self.radix - 1)

    def distance(self, a: int, b: int) -> int:
        """Manhattan distance between nodes *a* and *b*."""
        ca, cb = self.coordinates(a), self.coordinates(b)
        return sum(abs(x - y) for x, y in zip(ca, cb))

    def checkerboard_label(self, node: int) -> int:
        """2-coloring label (coordinate-sum parity) for the NHop scheme."""
        return sum(self.coordinates(node)) & 1

    # ------------------------------------------------------------------
    # Buffer-class budgets quoted by the paper (Section 3)
    # ------------------------------------------------------------------
    def phop_classes(self) -> int:
        """Buffer classes PHop needs: ``n(k-1) + 1``."""
        return self.diameter + 1

    def nhop_classes(self) -> int:
        """Buffer classes NHop needs: ``1 + floor(n(k-1)/2)``."""
        return 1 + self.diameter // 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KAryNMesh(radix={self.radix}, dimensions={self.dimensions})"
