"""Mesh interconnect topologies.

The simulator operates on 2-D meshes (:class:`Mesh2D`); the general
:class:`KAryNMesh` exists for the virtual-channel budget formulas of the
hop-based schemes (which the paper states for *n*-dimensional meshes) and
for property tests of the addressing math.
"""

from repro.topology.directions import (
    DIRECTIONS,
    EAST,
    LOCAL,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    direction_delta,
    direction_name,
)
from repro.topology.mesh import Mesh2D
from repro.topology.ndmesh import KAryNMesh

__all__ = [
    "DIRECTIONS",
    "EAST",
    "LOCAL",
    "NORTH",
    "OPPOSITE",
    "SOUTH",
    "WEST",
    "KAryNMesh",
    "Mesh2D",
    "direction_delta",
    "direction_name",
]
