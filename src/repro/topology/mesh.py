"""The 2-D mesh topology.

Nodes are dense integer ids (``node = y * width + x``) so that simulator
state can live in flat lists.  All coordinate math is centralized here.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.topology.directions import (
    DIRECTIONS,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    direction_delta,
)


class Mesh2D:
    """A ``width x height`` 2-D mesh (no wrap-around links).

    The paper's networks are square ``k x k`` meshes (``k = 10``), but the
    implementation supports rectangular meshes; ``Mesh2D(k)`` builds the
    square case.

    Parameters
    ----------
    width:
        Number of columns (the x extent).
    height:
        Number of rows (the y extent); defaults to ``width``.
    """

    __slots__ = ("width", "height", "n_nodes", "_neighbors")

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 2 or height < 2:
            raise ValueError("mesh dimensions must be at least 2x2")
        self.width = width
        self.height = height
        self.n_nodes = width * height
        # Precomputed neighbor table: _neighbors[node][direction] is the
        # neighboring node id or -1 at the mesh edge.  This is the hot-path
        # lookup for routing and f-ring construction.
        table = []
        for node in range(self.n_nodes):
            x, y = node % width, node // width
            row = [-1, -1, -1, -1]
            if x + 1 < width:
                row[EAST] = node + 1
            if x > 0:
                row[WEST] = node - 1
            if y + 1 < height:
                row[NORTH] = node + width
            if y > 0:
                row[SOUTH] = node - width
            table.append(tuple(row))
        self._neighbors = tuple(table)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def node_id(self, x: int, y: int) -> int:
        """Dense id of the node at ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def coordinates(self, node: int) -> tuple[int, int]:
        """``(x, y)`` coordinates of *node*."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} outside mesh with {self.n_nodes} nodes")
        return node % self.width, node // self.width

    def in_bounds(self, x: int, y: int) -> bool:
        """Whether ``(x, y)`` is a valid coordinate in this mesh."""
        return 0 <= x < self.width and 0 <= y < self.height

    def nodes(self) -> range:
        """All node ids."""
        return range(self.n_nodes)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbor(self, node: int, direction: int) -> int:
        """Neighbor of *node* in *direction*, or ``-1`` at the mesh edge."""
        return self._neighbors[node][direction]

    def neighbor_table(self, node: int) -> tuple[int, int, int, int]:
        """The ``(E, W, N, S)`` neighbor row of *node* (``-1`` = edge)."""
        return self._neighbors[node]

    def neighbors(self, node: int) -> Iterator[int]:
        """Existing neighbors of *node* (2, 3 or 4 of them)."""
        return (n for n in self._neighbors[node] if n >= 0)

    def degree(self, node: int) -> int:
        """Number of mesh links incident on *node*."""
        return sum(1 for n in self._neighbors[node] if n >= 0)

    # ------------------------------------------------------------------
    # Distances and routing geometry
    # ------------------------------------------------------------------
    @property
    def diameter(self) -> int:
        """Network diameter ``(width-1) + (height-1)``."""
        return (self.width - 1) + (self.height - 1)

    def distance(self, a: int, b: int) -> int:
        """Manhattan (minimal-path) distance between nodes *a* and *b*."""
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by)

    def offsets(self, src: int, dst: int) -> tuple[int, int]:
        """Signed ``(dx, dy)`` offset from *src* to *dst*."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return dx - sx, dy - sy

    def minimal_directions(self, src: int, dst: int) -> tuple[int, ...]:
        """Directions whose hop reduces the distance from *src* to *dst*.

        Empty iff ``src == dst``; has one element when the nodes share a row
        or column, two otherwise.
        """
        dx, dy = self.offsets(src, dst)
        dirs = []
        if dx > 0:
            dirs.append(EAST)
        elif dx < 0:
            dirs.append(WEST)
        if dy > 0:
            dirs.append(NORTH)
        elif dy < 0:
            dirs.append(SOUTH)
        return tuple(dirs)

    def step(self, node: int, direction: int) -> int:
        """Like :meth:`neighbor` but raises at the mesh edge."""
        nxt = self._neighbors[node][direction]
        if nxt < 0:
            raise ValueError(
                f"no {direction!r} neighbor of node {node} "
                f"({self.coordinates(node)}) in {self.width}x{self.height} mesh"
            )
        return nxt

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def channels(self) -> Iterator[tuple[int, int, int]]:
        """All directed network channels as ``(src, direction, dst)``."""
        for node in range(self.n_nodes):
            for direction in DIRECTIONS:
                dst = self._neighbors[node][direction]
                if dst >= 0:
                    yield node, direction, dst

    @property
    def n_channels(self) -> int:
        """Number of directed network channels (excludes injection/ejection)."""
        return 2 * ((self.width - 1) * self.height + self.width * (self.height - 1))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def checkerboard_label(self, node: int) -> int:
        """2-coloring label used by the negative-hop scheme (0 or 1)."""
        x, y = self.coordinates(node)
        return (x + y) & 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mesh2D({self.width}, {self.height})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mesh2D)
            and other.width == self.width
            and other.height == self.height
        )

    def __hash__(self) -> int:
        return hash((self.width, self.height))


def direction_of_hop(mesh: Mesh2D, src: int, dst: int) -> int:
    """Direction of the mesh link from *src* to adjacent node *dst*."""
    sx, sy = mesh.coordinates(src)
    dx, dy = mesh.coordinates(dst)
    step = (dx - sx, dy - sy)
    for direction in DIRECTIONS:
        if direction_delta(direction) == step:
            return direction
    raise ValueError(f"nodes {src} and {dst} are not mesh-adjacent")
