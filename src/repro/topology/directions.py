"""Port directions for 2-D mesh routers.

Directions are small integers so they can index flat per-port arrays in the
simulator hot loop.  The convention is:

* ``EAST``  — +x
* ``WEST``  — -x
* ``NORTH`` — +y
* ``SOUTH`` — -y
* ``LOCAL`` — the processing element (injection/ejection port)
"""

from __future__ import annotations

EAST = 0
WEST = 1
NORTH = 2
SOUTH = 3
LOCAL = 4

#: The four network directions (excludes LOCAL).
DIRECTIONS = (EAST, WEST, NORTH, SOUTH)

#: Opposite of each network direction (indexable by direction).
OPPOSITE = (WEST, EAST, SOUTH, NORTH)

_DELTAS = ((1, 0), (-1, 0), (0, 1), (0, -1))
_NAMES = ("E", "W", "N", "S", "L")


def direction_delta(direction: int) -> tuple[int, int]:
    """Return the ``(dx, dy)`` step taken by a hop in *direction*."""
    return _DELTAS[direction]


def direction_name(direction: int) -> str:
    """One-letter mnemonic (``E/W/N/S/L``) for *direction*."""
    return _NAMES[direction]


def delta_to_direction(dx: int, dy: int) -> int:
    """Inverse of :func:`direction_delta` for unit steps.

    Raises :class:`ValueError` if ``(dx, dy)`` is not a unit mesh step.
    """
    try:
        return _DELTAS.index((dx, dy))
    except ValueError:
        raise ValueError(f"({dx}, {dy}) is not a unit mesh step") from None
