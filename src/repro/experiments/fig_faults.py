"""Figures 4 and 5: performance vs fault percentage at full load.

The paper simulates 0%, 5% and 10% faulty nodes at "100% traffic load"
(offered 1 flit/node/cycle), averaging each faulty case over several
randomly drawn fault sets, and reports normalized throughput (Figure 4)
and normalized message latency (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluator import FaultCase
from repro.experiments.ascii_plot import line_chart, table
from repro.experiments.profiles import Profile
from repro.metrics.aggregate import AggregateResult
from repro.obs.profile import clock
from repro.routing.registry import display_name


@dataclass
class FaultStudyResult:
    """Data behind Figures 4 and 5."""

    profile: str
    fault_counts: tuple[int, ...]
    fault_percents: tuple[float, ...]
    points: dict[str, list[AggregateResult]] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "experiment": "fig4-fig5",
            "profile": self.profile,
            "fault_counts": list(self.fault_counts),
            "fault_percents": list(self.fault_percents),
            "throughput": {
                a: [p.throughput for p in pts] for a, pts in self.points.items()
            },
            "latency": {
                a: [p.network_latency for p in pts] for a, pts in self.points.items()
            },
            "dropped": {
                a: [p.dropped for p in pts] for a, pts in self.points.items()
            },
        }


def run_fault_study(
    profile: Profile,
    algorithms: tuple[str, ...] | None = None,
    *,
    seed: int = 2007,
    progress=None,
    workers: int = 1,
    store=None,
    instrument=None,
    manifest=None,
    spans=None,
) -> FaultStudyResult:
    """Run the full-load fault sweep behind Figures 4 and 5.

    ``workers > 1`` fans algorithms out to a process pool (registered
    profiles only, as in :func:`repro.experiments.fig_sweep.run_sweep`).
    *store* routes every cell through the shared result cache.
    *instrument* observes every executed simulation; telemetry-only
    instruments are pool-safe (worker snapshots merge in the parent,
    as in ``run_sweep``), tracers keep the study in process.
    *manifest* receives one ``cell`` event per algorithm.
    *spans* collects one ``cell.<algorithm>`` trace span per algorithm
    under the ambient trace context (as in ``run_sweep``).
    """
    import time

    from repro.experiments.parallel import (
        cache_delta,
        evaluator_cache_dict,
        job_span,
        merge_worker_output,
        pool_safe_instrument,
    )
    from repro.store import make_evaluator, store_dir_of

    algorithms = algorithms or profile.algorithms
    evaluator = make_evaluator(
        profile.config, seed=seed, store=store, instrument=instrument
    )
    n_nodes = evaluator.mesh.n_nodes
    result = FaultStudyResult(
        profile=profile.name,
        fault_counts=tuple(profile.fault_counts),
        fault_percents=tuple(100.0 * n / n_nodes for n in profile.fault_counts),
    )
    if (
        workers > 1
        and len(algorithms) > 1
        and pool_safe_instrument(instrument)
    ):
        from repro.experiments.parallel import _fault_worker, parallel_map
        from repro.experiments.profiles import get_profile

        if get_profile(profile.name) != profile:
            raise ValueError(
                "workers > 1 requires a registered profile (the pool "
                "rebuilds it by name); run custom profiles with workers=1"
            )
        with_telemetry = (
            instrument is not None and instrument.telemetry is not None
        )
        jobs = [
            (profile.name, alg, seed, tuple(profile.fault_counts),
             profile.fault_sets, store_dir_of(store), with_telemetry)
            for alg in algorithms
        ]
        for alg, data in parallel_map(
            _fault_worker, jobs, workers, progress, label="fig4/5"
        ):
            result.points[alg] = data["points"]
            merge_worker_output(instrument, data, spans)
            if manifest is not None:
                manifest.cell_finish(
                    alg, seconds=data["seconds"], worker=data["pid"],
                    cycles=data["cycles"], cache=data["cache"],
                )
        return result
    cases: list[FaultCase] = [
        evaluator.fault_case(n, profile.fault_sets) for n in profile.fault_counts
    ]
    n_runs = sum(len(case.patterns) for case in cases)
    rate = profile.full_load_rate
    for alg in algorithms:
        if manifest is not None:
            manifest.cell_start(alg)
        before = evaluator_cache_dict(evaluator)
        t0 = clock()
        pts = [
            evaluator.run_case(alg, case, injection_rate=rate) for case in cases
        ]
        result.points[alg] = pts
        if spans is not None:
            span = job_span(f"cell.{alg}", t0)
            if span is not None:
                spans.add(span)
        if manifest is not None:
            manifest.cell_finish(
                alg,
                seconds=clock() - t0,
                cycles=sum(p.simulated_cycles for p in pts),
                cache=cache_delta(before, evaluator_cache_dict(evaluator)),
            )
        if progress:
            progress(f"[fig4/5] {alg}: done ({len(pts)} fault cases)")
    return result


def print_fig4(result: FaultStudyResult) -> str:
    """Figure 4: normalized throughput vs percentage of faults."""
    rows = [
        [display_name(alg)] + [f"{p.throughput:.3f}" for p in pts]
        for alg, pts in result.points.items()
    ]
    head = ["algorithm"] + [f"{p:g}%" for p in result.fault_percents]
    out = [
        table(
            head,
            rows,
            title=(
                "Figure 4 - normalized throughput (flits/node/cycle) vs "
                "percentage of faulty nodes, 100% offered load"
            ),
        ),
        line_chart(
            {
                display_name(a): (
                    list(result.fault_percents),
                    [p.throughput for p in pts],
                )
                for a, pts in result.points.items()
            },
            title="Figure 4 (shape)",
            xlabel="% faulty nodes",
            ylabel="throughput",
        ),
    ]
    return "\n\n".join(out)


def print_fig5(result: FaultStudyResult) -> str:
    """Figure 5: normalized message latency vs percentage of faults."""
    rows = [
        [display_name(alg)]
        + [
            f"{p.network_latency:.0f}"
            if p.network_latency == p.network_latency
            else "-"
            for p in pts
        ]
        for alg, pts in result.points.items()
    ]
    head = ["algorithm"] + [f"{p:g}%" for p in result.fault_percents]
    out = [
        table(
            head,
            rows,
            title=(
                "Figure 5 - normalized message latency (flit cycles) vs "
                "percentage of faulty nodes, 100% offered load"
            ),
        ),
        line_chart(
            {
                display_name(a): (
                    list(result.fault_percents),
                    [p.network_latency for p in pts],
                )
                for a, pts in result.points.items()
            },
            title="Figure 5 (shape)",
            xlabel="% faulty nodes",
            ylabel="latency (cycles)",
        ),
    ]
    return "\n\n".join(out)
