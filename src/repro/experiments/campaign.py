"""Campaign runner: manifest-driven simulation grids with resume.

A *campaign* is the cross product of algorithms × injection rates ×
fault cases × repeats, described by a JSON-safe :class:`CampaignSpec`.
The runner executes every cell, appends one JSON line per finished run
to ``results.jsonl`` (so partial campaigns survive interruption and
resume for free), and writes a ``manifest.json`` capturing the exact
inputs — config, spec, and the drawn fault patterns — via
:mod:`repro.util.serialization`.

Example::

    spec = CampaignSpec(
        name="vc-study",
        algorithms=("nhop", "duato-nbc"),
        config=SimConfig(width=10, message_length=16, cycles=4000, warmup=1000),
        rates=(0.005, 0.02),
        fault_counts=(0, 5),
        fault_sets=2,
    )
    runner = CampaignRunner(spec, out_dir="campaigns/vc-study")
    runner.run()
    rows = runner.load_results()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.evaluator import Evaluator
from repro.simulator.config import SimConfig
from repro.store.backend import ResultStore, store_dir_of
from repro.store.cache import make_evaluator
from repro.util.serialization import (
    config_from_dict,
    config_to_dict,
    pattern_to_dict,
)

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a simulation campaign."""

    name: str
    algorithms: tuple[str, ...]
    config: SimConfig
    rates: tuple[float, ...]
    fault_counts: tuple[int, ...] = (0,)
    fault_sets: int = 1
    repeats: int = 1
    seed: int = 2007

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.algorithms:
            raise ValueError("campaign needs at least one algorithm")
        if not self.rates:
            raise ValueError("campaign needs at least one injection rate")
        if self.fault_sets < 1 or self.repeats < 1:
            raise ValueError("fault_sets and repeats must be positive")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "campaign-spec",
            "schema": _SCHEMA_VERSION,
            "name": self.name,
            "algorithms": list(self.algorithms),
            "config": config_to_dict(self.config),
            "rates": list(self.rates),
            "fault_counts": list(self.fault_counts),
            "fault_sets": self.fault_sets,
            "repeats": self.repeats,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> CampaignSpec:
        if payload.get("kind") != "campaign-spec":
            raise ValueError("payload is not a campaign-spec")
        if payload.get("schema") != _SCHEMA_VERSION:
            raise ValueError(
                f"unsupported campaign schema {payload.get('schema')!r}"
            )
        return cls(
            name=payload["name"],
            algorithms=tuple(payload["algorithms"]),
            config=config_from_dict(payload["config"]),
            rates=tuple(payload["rates"]),
            fault_counts=tuple(payload.get("fault_counts", (0,))),
            fault_sets=payload.get("fault_sets", 1),
            repeats=payload.get("repeats", 1),
            seed=payload.get("seed", 2007),
        )

    # ------------------------------------------------------------------
    def job_keys(self) -> list[dict]:
        """All grid cells, as order-stable JSON-safe key dicts."""
        keys = []
        for alg in self.algorithms:
            for rate in self.rates:
                for n_faults in self.fault_counts:
                    n_sets = self.fault_sets if n_faults else 1
                    for set_idx in range(n_sets):
                        for repeat in range(self.repeats):
                            keys.append(
                                {
                                    "algorithm": alg,
                                    "rate": rate,
                                    "n_faults": n_faults,
                                    "fault_set": set_idx,
                                    "repeat": repeat,
                                }
                            )
        return keys

    @property
    def n_jobs(self) -> int:
        return len(self.job_keys())


def _key_id(key: dict) -> str:
    return (
        f"{key['algorithm']}/r{key['rate']:.9f}/f{key['n_faults']}"
        f"/s{key['fault_set']}/x{key['repeat']}"
    )


def _draw_cases(evaluator: Evaluator, spec: CampaignSpec) -> dict:
    """The campaign's fault cases (deterministic in the spec seed).

    Workers redraw the same cases locally: ``Evaluator.fault_case``
    seeds its RNG from the evaluator seed and the fault count only, so
    every process agrees on the patterns without shipping them around.
    """
    return {
        n: evaluator.fault_case(n, spec.fault_sets if n else 1)
        for n in spec.fault_counts
    }


def _execute_cell(evaluator: Evaluator, cases: dict, key: dict) -> dict:
    """Run one grid cell and flatten it to a JSON-safe results row."""
    case = cases[key["n_faults"]]
    faults = case.patterns[key["fault_set"]]
    result = evaluator.run_single(
        key["algorithm"],
        faults,
        injection_rate=key["rate"],
        set_index=key["fault_set"] * 1000 + key["repeat"],
    )
    return {
        **key,
        "throughput": result.throughput,
        "latency": result.avg_latency,
        "network_latency": result.avg_network_latency,
        "delivered": result.delivered,
        "dropped": result.dropped_deadlock + result.dropped_livelock,
        "avg_hops": result.avg_hops,
    }


def _campaign_worker(args: tuple[dict, list[dict], str | None]) -> list[dict]:
    """Pool worker: run a chunk of campaign cells, return finished rows.

    Only the parent writes ``results.jsonl``; when a store directory is
    given, the shared :class:`~repro.store.ResultStore` is the
    cross-process dedup point — a cell simulated by any worker (or any
    earlier figure run) is a cache hit everywhere else.
    """
    spec_payload, keys, store_dir = args
    spec = CampaignSpec.from_dict(spec_payload)
    evaluator = make_evaluator(spec.config, seed=spec.seed, store=store_dir)
    cases = _draw_cases(evaluator, spec)
    rows = []
    for key in keys:
        row = _execute_cell(evaluator, cases, key)
        row["id"] = _key_id(key)
        rows.append(row)
    return rows


class CampaignRunner:
    """Executes a :class:`CampaignSpec` with crash-safe resume.

    *store* (a :class:`~repro.store.ResultStore` or directory) routes
    every cell through the content-addressed result cache, shared with
    the figure drivers and with pool workers when ``run(workers=N)``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir: Path | str,
        *,
        store: ResultStore | Path | str | None = None,
    ) -> None:
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.results_path = self.out_dir / "results.jsonl"
        self.manifest_path = self.out_dir / "manifest.json"
        self.store = store
        self._evaluator = make_evaluator(spec.config, seed=spec.seed, store=store)
        # Draw the fault cases once; they are part of the manifest.
        self._cases = _draw_cases(self._evaluator, spec)

    # ------------------------------------------------------------------
    def write_manifest(self) -> None:
        manifest = {
            "kind": "campaign-manifest",
            "schema": _SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "fault_patterns": {
                str(n): [pattern_to_dict(p) for p in case.patterns]
                for n, case in self._cases.items()
            },
        }
        self.manifest_path.write_text(json.dumps(manifest, indent=2))

    def completed_ids(self) -> set[str]:
        """Ids of jobs already present in ``results.jsonl``."""
        if not self.results_path.exists():
            return set()
        done = set()
        for line in self.results_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                done.add(json.loads(line)["id"])
            except (json.JSONDecodeError, KeyError):
                continue  # torn final line from a crash: re-run that job
        return done

    def run(
        self, *, resume: bool = True, progress=None, workers: int = 1
    ) -> int:
        """Run every (remaining) job; returns how many were executed.

        ``workers > 1`` fans the pending cells out to a process pool in
        contiguous chunks (one per worker).  The parent remains the only
        writer of ``results.jsonl``; cross-process work sharing happens
        through the result store, when one is configured.
        """
        self.write_manifest()
        done = self.completed_ids() if resume else set()
        pending = [
            key for key in self.spec.job_keys() if _key_id(key) not in done
        ]
        executed = 0
        with self.results_path.open("a" if resume else "w") as sink:

            def _emit(row: dict) -> None:
                sink.write(json.dumps(row) + "\n")
                sink.flush()
                if progress:
                    progress(f"[{self.spec.name}] {row['id']}")

            if workers > 1 and len(pending) > 1:
                from repro.experiments.parallel import parallel_map

                n_chunks = min(workers, len(pending))
                size = -(-len(pending) // n_chunks)  # ceil division
                chunks = [
                    pending[i : i + size] for i in range(0, len(pending), size)
                ]
                spec_payload = self.spec.to_dict()
                store_dir = store_dir_of(self.store)
                jobs = [(spec_payload, chunk, store_dir) for chunk in chunks]
                for rows in parallel_map(
                    _campaign_worker, jobs, workers, label=self.spec.name
                ):
                    for row in rows:
                        _emit(row)
                        executed += 1
                return executed

            for key in pending:
                row = self._run_job(key)
                row["id"] = _key_id(key)
                _emit(row)
                executed += 1
        return executed

    def _run_job(self, key: dict) -> dict:
        return _execute_cell(self._evaluator, self._cases, key)

    # ------------------------------------------------------------------
    def load_results(self) -> list[dict]:
        """All completed rows, in file order."""
        if not self.results_path.exists():
            return []
        rows = []
        for line in self.results_path.read_text().splitlines():
            if line.strip():
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return rows


def load_campaign(out_dir: Path | str) -> tuple[CampaignSpec, list[dict]]:
    """Rebuild a campaign's spec and results from its output directory."""
    out_dir = Path(out_dir)
    manifest = json.loads((out_dir / "manifest.json").read_text())
    spec = CampaignSpec.from_dict(manifest["spec"])
    runner = CampaignRunner(spec, out_dir)
    return spec, runner.load_results()
