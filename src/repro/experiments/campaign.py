"""Campaign runner: manifest-driven simulation grids with resume.

A *campaign* is the cross product of algorithms × injection rates ×
fault cases × repeats, described by a JSON-safe :class:`CampaignSpec`.
The runner executes every cell, appends one JSON line per finished run
to ``results.jsonl`` (so partial campaigns survive interruption and
resume for free), and writes a ``manifest.json`` capturing the exact
inputs — config, spec, and the drawn fault patterns — via
:mod:`repro.util.serialization`.

Example::

    spec = CampaignSpec(
        name="vc-study",
        algorithms=("nhop", "duato-nbc"),
        config=SimConfig(width=10, message_length=16, cycles=4000, warmup=1000),
        rates=(0.005, 0.02),
        fault_counts=(0, 5),
        fault_sets=2,
    )
    runner = CampaignRunner(spec, out_dir="campaigns/vc-study")
    runner.run()
    rows = runner.load_results()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.evaluator import Evaluator
from repro.simulator.config import SimConfig
from repro.store.backend import ResultStore, store_dir_of
from repro.store.cache import make_evaluator
from repro.util.serialization import (
    config_from_dict,
    config_to_dict,
    pattern_to_dict,
)

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a simulation campaign."""

    name: str
    algorithms: tuple[str, ...]
    config: SimConfig
    rates: tuple[float, ...]
    fault_counts: tuple[int, ...] = (0,)
    fault_sets: int = 1
    repeats: int = 1
    seed: int = 2007

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.algorithms:
            raise ValueError("campaign needs at least one algorithm")
        if not self.rates:
            raise ValueError("campaign needs at least one injection rate")
        if self.fault_sets < 1 or self.repeats < 1:
            raise ValueError("fault_sets and repeats must be positive")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "campaign-spec",
            "schema": _SCHEMA_VERSION,
            "name": self.name,
            "algorithms": list(self.algorithms),
            "config": config_to_dict(self.config),
            "rates": list(self.rates),
            "fault_counts": list(self.fault_counts),
            "fault_sets": self.fault_sets,
            "repeats": self.repeats,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> CampaignSpec:
        if payload.get("kind") != "campaign-spec":
            raise ValueError("payload is not a campaign-spec")
        if payload.get("schema") != _SCHEMA_VERSION:
            raise ValueError(
                f"unsupported campaign schema {payload.get('schema')!r}"
            )
        return cls(
            name=payload["name"],
            algorithms=tuple(payload["algorithms"]),
            config=config_from_dict(payload["config"]),
            rates=tuple(payload["rates"]),
            fault_counts=tuple(payload.get("fault_counts", (0,))),
            fault_sets=payload.get("fault_sets", 1),
            repeats=payload.get("repeats", 1),
            seed=payload.get("seed", 2007),
        )

    # ------------------------------------------------------------------
    def job_keys(self) -> list[dict]:
        """All grid cells, as order-stable JSON-safe key dicts."""
        keys = []
        for alg in self.algorithms:
            for rate in self.rates:
                for n_faults in self.fault_counts:
                    n_sets = self.fault_sets if n_faults else 1
                    for set_idx in range(n_sets):
                        for repeat in range(self.repeats):
                            keys.append(
                                {
                                    "algorithm": alg,
                                    "rate": rate,
                                    "n_faults": n_faults,
                                    "fault_set": set_idx,
                                    "repeat": repeat,
                                }
                            )
        return keys

    @property
    def n_jobs(self) -> int:
        return len(self.job_keys())


def _key_id(key: dict) -> str:
    return (
        f"{key['algorithm']}/r{key['rate']:.9f}/f{key['n_faults']}"
        f"/s{key['fault_set']}/x{key['repeat']}"
    )


def _draw_cases(evaluator: Evaluator, spec: CampaignSpec) -> dict:
    """The campaign's fault cases (deterministic in the spec seed).

    Workers redraw the same cases locally: ``Evaluator.fault_case``
    seeds its RNG from the evaluator seed and the fault count only, so
    every process agrees on the patterns without shipping them around.
    """
    return {
        n: evaluator.fault_case(n, spec.fault_sets if n else 1)
        for n in spec.fault_counts
    }


def _execute_cell(evaluator: Evaluator, cases: dict, key: dict) -> dict:
    """Run one grid cell and flatten it to a JSON-safe results row."""
    case = cases[key["n_faults"]]
    faults = case.patterns[key["fault_set"]]
    result = evaluator.run_single(
        key["algorithm"],
        faults,
        injection_rate=key["rate"],
        set_index=key["fault_set"] * 1000 + key["repeat"],
    )
    return {
        **key,
        "throughput": result.throughput,
        "latency": result.avg_latency,
        "network_latency": result.avg_network_latency,
        "delivered": result.delivered,
        "dropped": result.dropped_deadlock + result.dropped_livelock,
        "avg_hops": result.avg_hops,
        "cycles": result.measured_cycles + result.config.warmup,
    }


def _campaign_worker(
    args: tuple[dict, list[dict], str | None, bool],
) -> dict:
    """Pool worker: run a chunk of campaign cells, return finished rows.

    Only the parent writes ``results.jsonl`` and ``events.jsonl``; the
    worker ships each cell's wall seconds home alongside the rows, plus
    its telemetry snapshot (when the parent asked for one — fresh
    registry per worker, merged by the parent) and its evaluator's cache
    counters.  When a store directory is given, the shared
    :class:`~repro.store.ResultStore` is the cross-process dedup point —
    a cell simulated by any worker (or any earlier figure run) is a
    cache hit everywhere else.
    """
    import os
    import time

    from repro.experiments.parallel import _worker_registry, \
        evaluator_cache_dict

    spec_payload, keys, store_dir, with_telemetry = args
    spec = CampaignSpec.from_dict(spec_payload)
    registry, instrument = _worker_registry(with_telemetry)
    evaluator = make_evaluator(
        spec.config, seed=spec.seed, store=store_dir, instrument=instrument
    )
    cases = _draw_cases(evaluator, spec)
    rows = []
    cells = []
    for key in keys:
        t0 = time.perf_counter()
        row = _execute_cell(evaluator, cases, key)
        row["id"] = _key_id(key)
        rows.append(row)
        cells.append(
            {
                "id": row["id"],
                "seconds": time.perf_counter() - t0,
                "cycles": row["cycles"],
            }
        )
    return {
        "rows": rows,
        "cells": cells,
        "pid": os.getpid(),
        "snapshot": None if registry is None else registry.snapshot(),
        "cache": evaluator_cache_dict(evaluator),
    }


class CampaignRunner:
    """Executes a :class:`CampaignSpec` with crash-safe resume.

    *store* (a :class:`~repro.store.ResultStore` or directory) routes
    every cell through the content-addressed result cache, shared with
    the figure drivers and with pool workers when ``run(workers=N)``.

    *instrument* (see :class:`~repro.core.evaluator.Evaluator`) observes
    every executed cell.  Telemetry-only
    :class:`~repro.obs.telemetry.Instrument` objects distribute across
    ``run(workers=N)`` pools — each worker attaches a fresh registry and
    the parent merges the snapshots — while tracer-carrying instruments
    (and arbitrary callables) force the sequential path.

    Every :meth:`run` appends its lifecycle to ``events.jsonl`` next to
    ``results.jsonl`` (see :mod:`repro.obs.manifest`); render it with
    ``python -m repro.obs report <dir>/events.jsonl``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir: Path | str,
        *,
        store: ResultStore | Path | str | None = None,
        instrument=None,
    ) -> None:
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.results_path = self.out_dir / "results.jsonl"
        self.manifest_path = self.out_dir / "manifest.json"
        self.events_path = self.out_dir / "events.jsonl"
        self.store = store
        self.instrument = instrument
        self._evaluator = make_evaluator(
            spec.config, seed=spec.seed, store=store, instrument=instrument
        )
        # Draw the fault cases once; they are part of the manifest.
        self._cases = _draw_cases(self._evaluator, spec)

    # ------------------------------------------------------------------
    def write_manifest(self) -> None:
        manifest = {
            "kind": "campaign-manifest",
            "schema": _SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "fault_patterns": {
                str(n): [pattern_to_dict(p) for p in case.patterns]
                for n, case in self._cases.items()
            },
        }
        self.manifest_path.write_text(json.dumps(manifest, indent=2))

    def completed_ids(self) -> set[str]:
        """Ids of jobs already present in ``results.jsonl``."""
        if not self.results_path.exists():
            return set()
        done = set()
        for line in self.results_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                done.add(json.loads(line)["id"])
            except (json.JSONDecodeError, KeyError):
                continue  # torn final line from a crash: re-run that job
        return done

    def run(
        self, *, resume: bool = True, progress=None, workers: int = 1
    ) -> int:
        """Run every (remaining) job; returns how many were executed.

        ``workers > 1`` fans the pending cells out to a process pool in
        contiguous chunks (one per worker).  The parent remains the only
        writer of ``results.jsonl`` and ``events.jsonl``; cross-process
        work sharing happens through the result store, when one is
        configured, and worker telemetry snapshots merge into the
        parent instrument's registry.
        """
        import time

        from repro.experiments.parallel import (
            cache_delta,
            evaluator_cache_dict,
            merge_worker_output,
            pool_safe_instrument,
        )
        from repro.obs.manifest import ManifestWriter
        from repro.obs.telemetry import series_snapshot
        from repro.store.cache import CacheStats

        self.write_manifest()
        done = self.completed_ids() if resume else set()
        pending = [
            key for key in self.spec.job_keys() if _key_id(key) not in done
        ]
        executed = 0
        cache_totals = CacheStats()
        have_cache = False
        pool = (
            workers > 1
            and len(pending) > 1
            and pool_safe_instrument(self.instrument)
        )
        registry = getattr(self.instrument, "telemetry", None)
        with ManifestWriter(self.events_path) as events, \
                self.results_path.open("a" if resume else "w") as sink:
            events.run_start(
                self.spec.name,
                kind="campaign",
                workers=workers if pool else 1,
                store=store_dir_of(self.store),
                pending=len(pending),
                resumed=len(done),
            )

            def _emit(row: dict) -> None:
                sink.write(json.dumps(row) + "\n")
                sink.flush()
                if progress:
                    progress(f"[{self.spec.name}] {row['id']}")

            if pool:
                from repro.experiments.parallel import parallel_map

                n_chunks = min(workers, len(pending))
                size = -(-len(pending) // n_chunks)  # ceil division
                chunks = [
                    pending[i : i + size] for i in range(0, len(pending), size)
                ]
                spec_payload = self.spec.to_dict()
                store_dir = store_dir_of(self.store)
                with_telemetry = registry is not None
                jobs = [
                    (spec_payload, chunk, store_dir, with_telemetry)
                    for chunk in chunks
                ]
                for data in parallel_map(
                    _campaign_worker, jobs, workers, label=self.spec.name
                ):
                    for row, cell in zip(data["rows"], data["cells"]):
                        _emit(row)
                        executed += 1
                        events.cell_finish(
                            cell["id"], seconds=cell["seconds"],
                            worker=data["pid"], cycles=cell["cycles"],
                        )
                    merge_worker_output(self.instrument, data)
                    if data["cache"] is not None:
                        have_cache = True
                        cache_totals.add(data["cache"])
            else:
                run_before = evaluator_cache_dict(self._evaluator)
                for key in pending:
                    cell_id = _key_id(key)
                    events.cell_start(cell_id)
                    before = evaluator_cache_dict(self._evaluator)
                    t0 = time.perf_counter()
                    row = self._run_job(key)
                    row["id"] = cell_id
                    _emit(row)
                    executed += 1
                    events.cell_finish(
                        cell_id,
                        seconds=time.perf_counter() - t0,
                        cycles=row["cycles"],
                        cache=cache_delta(
                            before, evaluator_cache_dict(self._evaluator)
                        ),
                    )
                run_delta = cache_delta(
                    run_before, evaluator_cache_dict(self._evaluator)
                )
                if run_delta is not None:
                    have_cache = True
                    cache_totals.add(run_delta)
            series = (
                series_snapshot(registry) if registry is not None else None
            )
            events.run_finish(
                status="ok",
                cache=cache_totals.as_dict() if have_cache else None,
                telemetry_digest=(
                    registry.digest() if registry is not None else None
                ),
                telemetry_series=series or None,
            )
        return executed

    def _run_job(self, key: dict) -> dict:
        return _execute_cell(self._evaluator, self._cases, key)

    # ------------------------------------------------------------------
    def load_results(self) -> list[dict]:
        """All completed rows, in file order."""
        if not self.results_path.exists():
            return []
        rows = []
        for line in self.results_path.read_text().splitlines():
            if line.strip():
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return rows


def load_campaign(out_dir: Path | str) -> tuple[CampaignSpec, list[dict]]:
    """Rebuild a campaign's spec and results from its output directory."""
    out_dir = Path(out_dir)
    manifest = json.loads((out_dir / "manifest.json").read_text())
    spec = CampaignSpec.from_dict(manifest["spec"])
    runner = CampaignRunner(spec, out_dir)
    return spec, runner.load_results()
