"""Compatibility wrapper over :mod:`repro.campaigns`.

The campaign machinery grew into a top-level subsystem — declarative
specs (:mod:`repro.campaigns.spec`), the resumable runner
(:mod:`repro.campaigns.runner`), the persistent key-planning DB, the
shard executor and the query layer (:mod:`repro.campaigns`).  This
module keeps the historical import surface alive::

    from repro.experiments.campaign import CampaignRunner, CampaignSpec

New code should import from :mod:`repro.campaigns` directly.
"""

from __future__ import annotations

from repro.campaigns.runner import (
    CampaignRunner,
    _campaign_worker,
    load_campaign,
)
from repro.campaigns.spec import (
    CampaignSpec,
    cell_id as _key_id,
    draw_cases as _draw_cases,
    execute_cell as _execute_cell,
)

__all__ = ["CampaignRunner", "CampaignSpec", "load_campaign"]

# Re-exported private helpers (_key_id, _draw_cases, _execute_cell,
# _campaign_worker) keep pre-split call sites and pickles working.
_ = (_key_id, _draw_cases, _execute_cell, _campaign_worker)
