"""Figures 1 and 2: throughput and latency vs traffic generation rate.

Both figures come from one fault-free rate sweep over all algorithms
(10x10 mesh, 24 VCs, fixed-length messages, uniform traffic), exactly the
configuration of the paper's Section 5.  Figure 1 plots saturation
throughput, Figure 2 average message latency; the Section 5.1 saturation
onsets and peak throughputs are derived from the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.ascii_plot import line_chart, table
from repro.experiments.profiles import Profile
from repro.metrics.saturation import SaturationPoint, find_saturation, peak_throughput
from repro.obs.profile import clock
from repro.routing.registry import display_name


@dataclass
class SweepResult:
    """Data behind Figures 1 and 2."""

    profile: str
    loads: tuple[float, ...]
    rates: tuple[float, ...]
    throughput: dict[str, list[float]] = field(default_factory=dict)
    latency: dict[str, list[float]] = field(default_factory=dict)

    def saturation_points(self) -> dict[str, SaturationPoint | None]:
        return {
            alg: find_saturation(self.rates, lats)
            for alg, lats in self.latency.items()
        }

    def peaks(self) -> dict[str, tuple[float, float]]:
        return {
            alg: peak_throughput(self.rates, thr)
            for alg, thr in self.throughput.items()
        }

    def to_payload(self) -> dict:
        return {
            "experiment": "fig1-fig2",
            "profile": self.profile,
            "loads": list(self.loads),
            "rates": list(self.rates),
            "throughput": self.throughput,
            "latency": self.latency,
        }


def run_sweep(
    profile: Profile,
    algorithms: tuple[str, ...] | None = None,
    *,
    seed: int = 2007,
    progress=None,
    workers: int = 1,
    store=None,
    instrument=None,
    manifest=None,
    spans=None,
) -> SweepResult:
    """Run the fault-free rate sweep behind Figures 1 and 2.

    ``workers > 1`` fans the per-algorithm sweeps out to a process pool
    (identical results — seeding is per-algorithm).  The parallel path
    rebuilds the profile by name in each worker, so it requires one of
    the registered profiles; custom :class:`Profile` objects run in
    process with ``workers=1``.

    *store* (a :class:`repro.store.ResultStore` or directory) routes
    every cell through the result cache: cells simulated before — by
    this driver or any other — are served from the store.

    *instrument* (see :class:`~repro.core.evaluator.Evaluator`) observes
    every executed simulation.  A telemetry-only
    :class:`~repro.obs.telemetry.Instrument` is pool-safe: each worker
    attaches a fresh registry and the parent merges the snapshots, so
    the merged counters match a sequential run exactly.  Instruments
    carrying a tracer (or arbitrary callables) keep the sweep in
    process.

    *manifest* (a :class:`~repro.obs.manifest.ManifestWriter`) receives
    one ``cell`` event per algorithm with its wall seconds, simulated
    cycles and cache counters.

    *spans* (a :class:`~repro.obs.spans.SpanRecorder`) collects one
    ``cell.<algorithm>`` trace span per algorithm under the ambient
    trace context — identical ids whether the cells ran pooled or in
    process.
    """
    import time

    from repro.experiments.parallel import (
        cache_delta,
        evaluator_cache_dict,
        job_span,
        merge_worker_output,
        pool_safe_instrument,
    )
    from repro.store import make_evaluator, store_dir_of

    algorithms = algorithms or profile.algorithms
    result = SweepResult(
        profile=profile.name, loads=profile.sweep_loads, rates=profile.sweep_rates
    )
    if (
        workers > 1
        and len(algorithms) > 1
        and pool_safe_instrument(instrument)
    ):
        from repro.experiments.parallel import _sweep_worker, parallel_map
        from repro.experiments.profiles import get_profile

        if get_profile(profile.name) != profile:
            raise ValueError(
                "workers > 1 requires a registered profile (the pool "
                "rebuilds it by name); run custom profiles with workers=1"
            )
        with_telemetry = (
            instrument is not None and instrument.telemetry is not None
        )
        jobs = [
            (profile.name, alg, seed, store_dir_of(store), with_telemetry)
            for alg in algorithms
        ]
        for alg, data in parallel_map(
            _sweep_worker, jobs, workers, progress, label="fig1/2"
        ):
            result.throughput[alg] = data["throughput"]
            result.latency[alg] = data["latency"]
            merge_worker_output(instrument, data, spans)
            if manifest is not None:
                manifest.cell_finish(
                    alg, seconds=data["seconds"], worker=data["pid"],
                    cycles=data["cycles"], cache=data["cache"],
                )
        return result
    evaluator = make_evaluator(
        profile.config, seed=seed, store=store, instrument=instrument
    )
    for alg in algorithms:
        if manifest is not None:
            manifest.cell_start(alg)
        before = evaluator_cache_dict(evaluator)
        t0 = clock()
        points = evaluator.rate_sweep(alg, profile.sweep_rates)
        result.throughput[alg] = [p.throughput for p in points]
        result.latency[alg] = [p.network_latency for p in points]
        if spans is not None:
            span = job_span(f"cell.{alg}", t0)
            if span is not None:
                spans.add(span)
        if manifest is not None:
            manifest.cell_finish(
                alg,
                seconds=clock() - t0,
                cycles=sum(p.simulated_cycles for p in points),
                cache=cache_delta(before, evaluator_cache_dict(evaluator)),
            )
        if progress:
            progress(f"[fig1/2] {alg}: done ({len(points)} rates)")
    return result


def print_fig1(result: SweepResult) -> str:
    """Figure 1: saturation throughput vs traffic generation rate."""
    rows = []
    peaks = result.peaks()
    for alg, thr in result.throughput.items():
        rows.append(
            [display_name(alg)]
            + [f"{t:.3f}" for t in thr]
            + [f"{peaks[alg][1]:.3f}"]
        )
    head = ["algorithm"] + [f"{r:.4g}" for r in result.rates] + ["peak"]
    out = [
        table(
            head,
            rows,
            title=(
                "Figure 1 - normalized accepted throughput (flits/node/cycle) "
                "vs injection rate (messages/node/cycle)"
            ),
        )
    ]
    out.append(
        line_chart(
            {
                display_name(a): (list(result.rates), t)
                for a, t in result.throughput.items()
            },
            title="Figure 1 (shape)",
            xlabel="injection rate (msgs/node/cycle)",
            ylabel="throughput (flits/node/cycle)",
        )
    )
    return "\n\n".join(out)


def print_fig2(result: SweepResult) -> str:
    """Figure 2: average message latency vs traffic generation rate."""
    rows = []
    sats = result.saturation_points()
    for alg, lats in result.latency.items():
        sat = sats[alg]
        rows.append(
            [display_name(alg)]
            + [f"{latv:.0f}" if latv == latv else "-" for latv in lats]
            + [f"{sat.rate:.4g}" if sat else ">max"]
        )
    head = ["algorithm"] + [f"{r:.4g}" for r in result.rates] + ["sat@"]
    out = [
        table(
            head,
            rows,
            title=(
                "Figure 2 - average message latency (flit cycles) vs "
                "injection rate (messages/node/cycle)"
            ),
        )
    ]
    out.append(
        line_chart(
            {
                display_name(a): (list(result.rates), lats)
                for a, lats in result.latency.items()
            },
            title="Figure 2 (shape)",
            xlabel="injection rate (msgs/node/cycle)",
            ylabel="latency (cycles)",
        )
    )
    return "\n\n".join(out)
