"""Experiment profiles: how much simulation to spend per figure.

The *paper* profile reproduces the paper's configuration (10x10 mesh,
100-flit messages, 24 VCs, 30k cycles with 10k warm-up, 10 fault sets).
The *quick* profile keeps the mesh radix and VC budget but shortens
messages and runs so a full figure regenerates in minutes; *smoke* is for
the test suite.  Sweep points are specified as **offered flit loads**
(flits/node/cycle) so profiles with different message lengths sample the
same physical operating points; the injection rate passed to the engine
is ``load / message_length``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.registry import PAPER_ORDER
from repro.simulator.config import SimConfig


@dataclass(frozen=True)
class Profile:
    """Scaling knobs for the experiment drivers."""

    name: str
    config: SimConfig
    #: Offered loads (flits/node/cycle) for the Figure 1/2 rate sweeps.
    sweep_loads: tuple[float, ...]
    #: Fault counts for Figures 4/5 (the paper's 0%, 5%, 10% on 100 nodes).
    fault_counts: tuple[int, ...]
    #: Independent random fault sets averaged per faulty point.
    fault_sets: int
    #: Fault count for the Figure 3 VC-usage study (paper: 5%).
    vc_usage_faults: int
    #: Offered load used for the fixed-load figures (paper: "100% traffic
    #: load" = 1 flit/node/cycle).
    full_load: float
    #: Offered load for the Figure 3 VC-usage study (near saturation).
    vc_usage_load: float
    #: Algorithms, in the paper's legend order.
    algorithms: tuple[str, ...] = PAPER_ORDER

    def rate(self, load: float) -> float:
        """Injection rate (messages/node/cycle) for an offered flit load."""
        return load / self.config.message_length

    @property
    def sweep_rates(self) -> tuple[float, ...]:
        return tuple(self.rate(load) for load in self.sweep_loads)

    @property
    def full_load_rate(self) -> float:
        return self.rate(self.full_load)


PAPER_PROFILE = Profile(
    name="paper",
    config=SimConfig(
        width=10,
        vcs_per_channel=24,
        message_length=100,
        cycles=30_000,
        warmup=10_000,
    ),
    # The paper's x axis spans 0.0001..0.0251 messages/node/cycle with
    # 100-flit messages, i.e. offered loads 0.01..2.51 flits/node/cycle;
    # sampling is denser below saturation (~0.4).
    sweep_loads=(0.01, 0.06, 0.11, 0.16, 0.21, 0.31, 0.41, 0.51, 0.76, 1.01, 1.51, 2.51),
    fault_counts=(0, 5, 10),
    fault_sets=10,
    vc_usage_faults=5,
    full_load=1.0,
    vc_usage_load=0.35,
)

QUICK_PROFILE = Profile(
    name="quick",
    config=SimConfig(
        width=10,
        vcs_per_channel=24,
        message_length=16,
        cycles=5_000,
        warmup=1_500,
    ),
    sweep_loads=(0.01, 0.06, 0.11, 0.16, 0.21, 0.31, 0.41, 0.51, 1.01),
    fault_counts=(0, 5, 10),
    fault_sets=3,
    vc_usage_faults=5,
    full_load=1.0,
    vc_usage_load=0.35,
)

SMOKE_PROFILE = Profile(
    name="smoke",
    config=SimConfig(
        width=8,
        vcs_per_channel=24,
        message_length=8,
        cycles=1_500,
        warmup=400,
    ),
    sweep_loads=(0.02, 0.2, 0.6),
    fault_counts=(0, 3),
    fault_sets=2,
    vc_usage_faults=3,
    full_load=1.0,
    vc_usage_load=0.3,
)

def _auto_variant(profile: Profile, ci_rel_tol: float) -> Profile:
    """The ``<name>+auto`` twin: same study, adaptive run lengths.

    Identical to *profile* except ``cycles_mode="auto"``: every run may
    stop at the first window boundary where the batch-means latency CI
    is inside *ci_rel_tol* (``profile.config.cycles`` stays the bound).
    The tolerance scales with the profile's sample budget — the paper
    profile has enough deliveries per window for a tight 5% CI, while
    the short quick/smoke runs would never converge at that bar.
    Registering the twin under its own name means the ``--workers``
    pools (which rebuild profiles by name) support it with no extra
    plumbing, and the changed config fields keep its store keys disjoint
    from fixed-cycle runs.
    """
    from dataclasses import replace

    return replace(
        profile,
        name=f"{profile.name}+auto",
        config=profile.config.with_(
            cycles_mode="auto", ci_rel_tol=ci_rel_tol
        ),
    )


PROFILES: dict[str, Profile] = {
    p.name: p
    for p in (
        PAPER_PROFILE,
        QUICK_PROFILE,
        SMOKE_PROFILE,
        _auto_variant(PAPER_PROFILE, 0.05),
        _auto_variant(QUICK_PROFILE, 0.10),
        _auto_variant(SMOKE_PROFILE, 0.20),
    )
}


def get_profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown profile {name!r}; known: {known}") from None
