"""Markdown report generation from saved experiment JSON.

Every driver dumps its raw series as JSON when the CLI runs with
``--out DIR``; :func:`summarize_directory` turns a directory of those
payloads back into a compact markdown report (the skeleton of
EXPERIMENTS.md's measured columns).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.routing.registry import display_name


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "–"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.0f}"
    return str(value)


def _md_table(headers: list[str], rows: list[list]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(lines)


def summarize_sweep(payload: dict) -> str:
    rates = payload["rates"]
    rows = []
    for alg, thr in payload["throughput"].items():
        lats = payload["latency"][alg]
        peak = max(thr)
        zero_load = next((v for v in lats if not math.isnan(v)), float("nan"))
        rows.append([display_name(alg), _fmt(zero_load), _fmt(peak)])
    header = (
        f"### Figures 1–2 sweep ({payload['profile']} profile, "
        f"{len(rates)} rates)\n\n"
    )
    return header + _md_table(
        ["algorithm", "zero-load latency", "peak throughput"], rows
    )


def summarize_faults(payload: dict) -> str:
    pct = payload["fault_percents"]
    rows = []
    for alg, thr in payload["throughput"].items():
        lats = payload["latency"][alg]
        rows.append(
            [display_name(alg)]
            + [_fmt(t) for t in thr]
            + [_fmt(v) for v in lats]
        )
    headers = (
        ["algorithm"]
        + [f"thr @{p:g}%" for p in pct]
        + [f"lat @{p:g}%" for p in pct]
    )
    header = f"### Figures 4–5 fault study ({payload['profile']} profile)\n\n"
    return header + _md_table(headers, rows)


def summarize_vc_usage(payload: dict) -> str:
    rows = []
    for alg, usage in payload["usage"].items():
        non_ring = usage[:-4]
        ring = usage[-4:]
        mean = sum(non_ring) / len(non_ring)
        var = sum((u - mean) ** 2 for u in non_ring) / len(non_ring)
        imbalance = (var**0.5 / mean) if mean else float("nan")
        rows.append(
            [display_name(alg), _fmt(max(non_ring)), _fmt(imbalance), _fmt(sum(ring))]
        )
    header = (
        f"### Figure 3 VC usage ({payload['profile']} profile, "
        f"{payload['n_faults']} faults)\n\n"
    )
    return header + _md_table(
        ["algorithm", "busiest VC %", "imbalance", "ring VC % (sum)"], rows
    )


def summarize_fring(payload: dict) -> str:
    rows = []
    for alg, cases in payload["splits"].items():
        ff, fy = cases["0%"], cases["faulty"]
        ratio = (
            fy["ring_pct"] / fy["other_pct"] if fy["other_pct"] else float("nan")
        )
        rows.append(
            [
                display_name(alg),
                _fmt(ff["ring_pct"]),
                _fmt(fy["ring_pct"]),
                _fmt(fy["other_pct"]),
                _fmt(ratio),
            ]
        )
    header = (
        f"### Figure 6 f-ring loads ({payload['profile']} profile, "
        f"{payload['n_faults']} faults)\n\n"
    )
    return header + _md_table(
        ["algorithm", "ring% (0%)", "ring% (faulty)", "other% (faulty)", "ratio"],
        rows,
    )


def summarize_ablation(payload: dict) -> str:
    rows = payload["rows"]
    if not rows:
        return f"### {payload['experiment']}\n\n(no rows)"
    headers = list(rows[0])
    body = [[row.get(h, "") for h in headers] for row in rows]
    return f"### {payload['experiment']}\n\n" + _md_table(headers, body)


_SUMMARIZERS = {
    "fig1-fig2": summarize_sweep,
    "fig4-fig5": summarize_faults,
    "fig3": summarize_vc_usage,
    "fig6": summarize_fring,
}


def summarize_payload(payload: dict) -> str:
    """Markdown summary of one saved experiment payload."""
    kind = payload.get("experiment", "")
    if kind.startswith("ablation-"):
        return summarize_ablation(payload)
    try:
        fn = _SUMMARIZERS[kind]
    except KeyError:
        raise ValueError(f"unknown experiment payload {kind!r}") from None
    return fn(payload)


def summarize_directory(directory: Path | str) -> str:
    """Markdown report over every ``*.json`` payload in *directory*."""
    directory = Path(directory)
    parts = [f"# Experiment report — {directory}"]
    found = False
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
            parts.append(summarize_payload(payload))
            found = True
        except (ValueError, KeyError):
            parts.append(f"### {path.name}\n\n(unrecognized payload, skipped)")
    if not found:
        parts.append("(no experiment payloads found)")
    return "\n\n".join(parts)
