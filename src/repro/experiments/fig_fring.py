"""Figure 6: traffic-load distribution around fault rings.

The paper fixes one fault layout — a 2x3 block fault plus two 1x1 block
faults whose f-rings overlap in a row — and compares the mean traffic
load of f-ring nodes against all other nodes, for every algorithm, with
the faults present and absent (same node positions).  Loads are reported
as a percentage of the busiest node's load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.ascii_plot import bar_chart, table
from repro.experiments.profiles import Profile
from repro.faults.generator import figure6_fault_pattern
from repro.faults.pattern import FaultPattern
from repro.metrics.traffic_load import (
    TrafficLoadSplit,
    ring_corner_split,
    traffic_load_split,
)
from repro.obs.profile import clock
from repro.routing.registry import display_name


@dataclass
class FRingResult:
    """Data behind Figure 6: per-algorithm load splits at 0% and ~10%."""

    profile: str
    n_faults: int
    #: ``splits[alg] = {"0%": TrafficLoadSplit, "faulty": TrafficLoadSplit}``
    splits: dict[str, dict[str, TrafficLoadSplit]] = field(default_factory=dict)
    #: Corner-vs-side load ratio of the faulty run (Section 5.2's
    #: "bottlenecks especially at the corners of fault rings").
    corner_ratios: dict[str, float] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "experiment": "fig6",
            "profile": self.profile,
            "n_faults": self.n_faults,
            "splits": {
                alg: {
                    label: {
                        "ring_pct": s.ring_load_pct,
                        "other_pct": s.other_load_pct,
                        "peak": s.peak_load_flits_per_cycle,
                    }
                    for label, s in cases.items()
                }
                for alg, cases in self.splits.items()
            },
        }


def run_fring_study(
    profile: Profile,
    algorithms: tuple[str, ...] | None = None,
    *,
    seed: int = 2007,
    progress=None,
    workers: int = 1,
    store=None,
    instrument=None,
    manifest=None,
    spans=None,
) -> FRingResult:
    """Run the Figure 6 traffic-load study.

    ``workers > 1`` fans algorithms out to a process pool (registered
    profiles only, as in :func:`repro.experiments.fig_sweep.run_sweep`).
    *store* routes every cell through the shared result cache (the
    per-node load counters are part of the cached payload).  *instrument*
    observes every executed simulation — with a telemetry registry
    attached, the engine's ``engine.fring.*.traversals`` counters break
    the ring-VC traffic down per fault ring/chain and the
    ``engine.node_flit_hops`` labeled counter carries the spatial load
    surface (see :mod:`repro.obs.heatmap`); telemetry-only instruments
    are pool-safe, tracers stay in process.  *manifest* receives one
    ``cell`` event per algorithm.  *spans* collects one
    ``cell.<algorithm>`` trace span per algorithm under the ambient
    trace context (as in ``run_sweep``).
    """
    import time

    from repro.experiments.parallel import (
        cache_delta,
        evaluator_cache_dict,
        job_span,
        merge_worker_output,
        pool_safe_instrument,
    )
    from repro.store import make_evaluator, store_dir_of

    algorithms = algorithms or profile.algorithms
    if (
        workers > 1
        and len(algorithms) > 1
        and pool_safe_instrument(instrument)
    ):
        from repro.experiments.parallel import _fring_worker, parallel_map
        from repro.experiments.profiles import get_profile

        if get_profile(profile.name) != profile:
            raise ValueError(
                "workers > 1 requires a registered profile (the pool "
                "rebuilds it by name); run custom profiles with workers=1"
            )
        from repro.topology.mesh import Mesh2D

        mesh = Mesh2D(profile.config.width, profile.config.height)
        result = FRingResult(
            profile=profile.name, n_faults=figure6_fault_pattern(mesh).n_faulty
        )
        with_telemetry = (
            instrument is not None and instrument.telemetry is not None
        )
        jobs = [
            (profile.name, alg, seed, store_dir_of(store), with_telemetry)
            for alg in algorithms
        ]
        for alg, data in parallel_map(
            _fring_worker, jobs, workers, progress, label="fig6"
        ):
            result.splits[alg] = data["splits"]
            result.corner_ratios[alg] = data["corner_ratio"]
            merge_worker_output(instrument, data, spans)
            if manifest is not None:
                manifest.cell_finish(
                    alg, seconds=data["seconds"], worker=data["pid"],
                    cycles=data["cycles"], cache=data["cache"],
                )
        return result
    evaluator = make_evaluator(
        profile.config, seed=seed, store=store, instrument=instrument
    )
    faulty = figure6_fault_pattern(evaluator.mesh)
    fault_free = FaultPattern.fault_free(evaluator.mesh)
    ring_nodes = faulty.ring_nodes
    rate = profile.full_load_rate
    result = FRingResult(profile=profile.name, n_faults=faulty.n_faulty)
    for alg in algorithms:
        if manifest is not None:
            manifest.cell_start(alg)
        before = evaluator_cache_dict(evaluator)
        t0 = clock()
        cases: dict[str, TrafficLoadSplit] = {}
        cell_cycles = 0
        for label, fp in (("0%", fault_free), ("faulty", faulty)):
            run = evaluator.run_single(
                alg, fp, injection_rate=rate, collect_node_stats=True
            )
            cases[label] = traffic_load_split(
                run, ring_nodes, exclude=fp.faulty
            )
            cell_cycles += run.measured_cycles + run.config.warmup
            if label == "faulty":
                result.corner_ratios[alg] = ring_corner_split(
                    run, faulty
                ).corner_ratio
        result.splits[alg] = cases
        if spans is not None:
            span = job_span(f"cell.{alg}", t0)
            if span is not None:
                spans.add(span)
        if manifest is not None:
            manifest.cell_finish(
                alg,
                seconds=clock() - t0,
                cycles=cell_cycles,
                cache=cache_delta(before, evaluator_cache_dict(evaluator)),
            )
        if progress:
            progress(f"[fig6] {alg}: done")
    return result


def print_fig6(result: FRingResult) -> str:
    """Figure 6 as a table plus grouped bars."""
    rows = []
    for alg, cases in result.splits.items():
        ff, fy = cases["0%"], cases["faulty"]
        corner = result.corner_ratios.get(alg, float("nan"))
        rows.append(
            [
                display_name(alg),
                f"{ff.ring_load_pct:.1f}",
                f"{ff.other_load_pct:.1f}",
                f"{fy.ring_load_pct:.1f}",
                f"{fy.other_load_pct:.1f}",
                f"{fy.hotspot_ratio:.2f}",
                f"{corner:.2f}" if corner == corner else "-",
            ]
        )
    head = [
        "algorithm",
        "f-ring% (0%)",
        "other% (0%)",
        "f-ring% (faulty)",
        "other% (faulty)",
        "hotspot ratio",
        "corner/side",
    ]
    out = [
        table(
            head,
            rows,
            title=(
                f"Figure 6 - traffic load on f-ring nodes vs other nodes "
                f"(% of peak node load), {result.n_faults} faulty nodes in "
                "the 2x3 + 1x1 + 1x1 layout"
            ),
        ),
        bar_chart(
            [
                (
                    display_name(alg),
                    {
                        "f-ring(faulty)": cases["faulty"].ring_load_pct,
                        "other (faulty)": cases["faulty"].other_load_pct,
                    },
                )
                for alg, cases in result.splits.items()
            ],
            title="Figure 6 (faulty case, shape)",
            unit="%",
        ),
    ]
    return "\n\n".join(out)
