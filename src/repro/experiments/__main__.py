"""``python -m repro.experiments`` — see :mod:`repro.experiments.cli`."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
