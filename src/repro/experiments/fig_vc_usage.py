"""Figure 3: virtual-channel utilization under 5% faults.

The paper plots, per algorithm, the average usage of each VC index
(VC0..VC23) in a 10x10 mesh with 5% node failures, split over two panels:
(a) the basic routing algorithms, (b) the modified/fault-tolerant ones.
The headline observations we reproduce: free-choice (category 1)
algorithms spread usage almost evenly, hop-class (category 2) algorithms
skew toward low VC indices, and the 4 Boppana-Chalasani ring VCs (the
last four indices) light up only when faults are present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.ascii_plot import table
from repro.experiments.profiles import Profile
from repro.metrics.vc_usage import usage_imbalance, vc_usage_percent
from repro.obs.profile import clock
from repro.routing.registry import display_name

#: The paper's two panels.
PANEL_A = ("fully-adaptive", "pbc", "minimal-adaptive", "nhop", "phop", "boura")
PANEL_B = ("nbc", "duato", "duato-pbc", "duato-nbc", "boura-ft")


@dataclass
class VcUsageResult:
    """Data behind Figure 3."""

    profile: str
    n_faults: int
    usage: dict[str, list[float]] = field(default_factory=dict)

    def imbalance(self) -> dict[str, float]:
        return {a: usage_imbalance(u) for a, u in self.usage.items()}

    def to_payload(self) -> dict:
        return {
            "experiment": "fig3",
            "profile": self.profile,
            "n_faults": self.n_faults,
            "usage": self.usage,
        }


def run_vc_usage(
    profile: Profile,
    algorithms: tuple[str, ...] | None = None,
    *,
    seed: int = 2007,
    progress=None,
    workers: int = 1,
    store=None,
    instrument=None,
    manifest=None,
    spans=None,
) -> VcUsageResult:
    """Run the VC-utilization study behind Figure 3.

    ``workers > 1`` fans algorithms out to a process pool (registered
    profiles only, as in :func:`repro.experiments.fig_sweep.run_sweep`).
    *store* routes every cell through the shared result cache (the
    per-VC busy counters are part of the cached payload).  *instrument*
    observes every executed simulation (the engine feeds Figure 3's
    ``vc_busy`` and an attached registry's ``engine.vc_busy.<role>``
    counters from the same occupancy sweep, so the two views reconcile
    exactly; see :func:`repro.metrics.vc_usage.reconcile_vc_usage`);
    telemetry-only instruments are pool-safe, tracers stay in process.
    *manifest* receives one ``cell`` event per algorithm.
    *spans* collects one ``cell.<algorithm>`` trace span per algorithm
    under the ambient trace context (as in ``run_sweep``).
    """
    import time

    from repro.experiments.parallel import (
        cache_delta,
        evaluator_cache_dict,
        job_span,
        merge_worker_output,
        pool_safe_instrument,
    )
    from repro.store import make_evaluator, store_dir_of

    algorithms = algorithms or profile.algorithms
    result = VcUsageResult(profile=profile.name, n_faults=profile.vc_usage_faults)
    if (
        workers > 1
        and len(algorithms) > 1
        and pool_safe_instrument(instrument)
    ):
        from repro.experiments.parallel import _vc_usage_worker, parallel_map
        from repro.experiments.profiles import get_profile

        if get_profile(profile.name) != profile:
            raise ValueError(
                "workers > 1 requires a registered profile (the pool "
                "rebuilds it by name); run custom profiles with workers=1"
            )
        with_telemetry = (
            instrument is not None and instrument.telemetry is not None
        )
        jobs = [
            (profile.name, alg, seed, store_dir_of(store), with_telemetry)
            for alg in algorithms
        ]
        for alg, data in parallel_map(
            _vc_usage_worker, jobs, workers, progress, label="fig3"
        ):
            result.usage[alg] = data["usage"]
            merge_worker_output(instrument, data, spans)
            if manifest is not None:
                manifest.cell_finish(
                    alg, seconds=data["seconds"], worker=data["pid"],
                    cycles=data["cycles"], cache=data["cache"],
                )
        return result
    evaluator = make_evaluator(
        profile.config, seed=seed, store=store, instrument=instrument
    )
    case = evaluator.fault_case(profile.vc_usage_faults, 1)
    rate = profile.rate(profile.vc_usage_load)
    for alg in algorithms:
        if manifest is not None:
            manifest.cell_start(alg)
        before = evaluator_cache_dict(evaluator)
        t0 = clock()
        run = evaluator.run_single(
            alg,
            case.patterns[0],
            injection_rate=rate,
            collect_vc_stats=True,
        )
        result.usage[alg] = vc_usage_percent(run)
        if spans is not None:
            span = job_span(f"cell.{alg}", t0)
            if span is not None:
                spans.add(span)
        if manifest is not None:
            manifest.cell_finish(
                alg,
                seconds=clock() - t0,
                cycles=run.measured_cycles + run.config.warmup,
                cache=cache_delta(before, evaluator_cache_dict(evaluator)),
            )
        if progress:
            progress(f"[fig3] {alg}: done")
    return result


def _panel(result: VcUsageResult, names: tuple[str, ...], label: str) -> str:
    present = [a for a in names if a in result.usage]
    if not present:
        return f"Figure 3{label}: (no algorithms run)"
    n_vcs = len(next(iter(result.usage.values())))
    rows = []
    imb = result.imbalance()
    for alg in present:
        u = result.usage[alg]
        rows.append(
            [display_name(alg)]
            + [f"{x:.2f}" for x in u]
            + [f"{imb[alg]:.2f}"]
        )
    head = ["algorithm"] + [f"VC{i}" for i in range(n_vcs)] + ["imbalance"]
    return table(
        head,
        rows,
        title=(
            f"Figure 3{label} - average VC usage (% of channel-cycles busy), "
            f"{result.n_faults} faulty nodes"
        ),
    )


def print_fig3(result: VcUsageResult) -> str:
    """Both panels of Figure 3 plus the ring-VC summary."""
    parts = [_panel(result, PANEL_A, "a"), _panel(result, PANEL_B, "b")]
    ring_rows = []
    for alg, u in result.usage.items():
        ring = sum(u[-4:])
        normal = sum(u[:-4])
        ring_rows.append([display_name(alg), f"{normal:.2f}", f"{ring:.2f}"])
    parts.append(
        table(
            ["algorithm", "sum non-ring VC %", "sum ring VC %"],
            ring_rows,
            title="Ring-VC (Boppana-Chalasani) share of utilization",
        )
    )
    return "\n\n".join(parts)
