"""Ablation studies over the design choices the paper singles out.

Each study isolates one knob the paper discusses qualitatively and
measures it:

* ``vc_count``      — "the amount of saturation throughput is affected by
  the number of virtual channels" (Section 5): throughput/latency vs
  VCs per physical channel.
* ``bonus_cards``   — the Section 4 modification: PHop vs Pbc and NHop vs
  Nbc under identical budgets.
* ``misroute_limit`` — Fully-Adaptive's misroute bound (the paper fixes
  it at 10): sweep the cap.
* ``buffer_depth``  — flit buffer depth per VC (a knob the paper leaves
  implicit).
* ``message_length`` — 32/64/100-flit messages, "commonly considered in
  the literature" (Section 5).
* ``mesh_size``     — radix scaling (the hop-based budgets grow with the
  diameter).

All studies run fault-free at a configurable offered load and return
plain row dicts so the CLI and benchmarks can render them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.ascii_plot import table
from repro.faults.pattern import FaultPattern
from repro.routing.freeform import FullyAdaptive
from repro.routing.registry import make_algorithm
from repro.simulator.config import SimConfig
from repro.simulator.engine import ENGINE_VERSION, Simulation
from repro.store.backend import ResultStore
from repro.store.keys import algorithm_token, run_key
from repro.topology.mesh import Mesh2D
from repro.util.serialization import result_from_dict, result_to_dict


@dataclass
class AblationResult:
    """Rows of one ablation study."""

    study: str
    knob: str
    rows: list[dict] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {"experiment": f"ablation-{self.study}", "rows": self.rows}

    def render(self) -> str:
        if not self.rows:
            return f"Ablation {self.study}: no rows"
        headers = list(self.rows[0])
        body = [[row[h] for h in headers] for row in self.rows]
        return table(headers, body, title=f"Ablation: {self.study} (knob: {self.knob})")


def _run(cfg: SimConfig, algorithm, store: ResultStore | None = None) -> dict:
    """One fault-free ablation cell, optionally through the result store.

    The cache token of an algorithm *instance* (e.g. Fully-Adaptive with
    a non-default misroute cap) includes its public scalar attributes, so
    differently parameterized instances never collide; it is computed
    before the simulation runs, while only constructor-set state exists.
    """
    token = algorithm_token(algorithm)
    alg = make_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    r = None
    key = None
    if store is not None:
        faults = FaultPattern.fault_free(Mesh2D(cfg.width, cfg.height))
        key = run_key(cfg, token, faults)
        cached = store.get(key)
        if cached is not None:
            r = result_from_dict(cached)
    if r is None:
        sim = Simulation(cfg, alg)
        r = sim.run()
        if store is not None and key is not None:
            store.put(
                key,
                result_to_dict(r),
                engine_version=ENGINE_VERSION,
                algorithm=token,
            )
    return {
        "throughput": round(r.throughput, 4),
        "latency": round(r.avg_latency, 1) if r.delivered else float("nan"),
        "delivered": r.delivered,
    }


def _base_config(load: float, **overrides) -> SimConfig:
    defaults = dict(
        width=10,
        vcs_per_channel=24,
        message_length=16,
        cycles=4_000,
        warmup=1_000,
        seed=31,
        on_deadlock="drain",
    )
    defaults.update(overrides)
    cfg = SimConfig(**defaults)
    return cfg.with_(injection_rate=load / cfg.message_length)


def vc_count_ablation(
    load: float = 0.5,
    algorithms: tuple[str, ...] = ("nhop", "duato-nbc", "minimal-adaptive"),
    vc_counts: tuple[int, ...] = (15, 18, 24, 32),
    store: ResultStore | None = None,
    **overrides,
) -> AblationResult:
    """Throughput/latency vs VCs per physical channel.

    The floor of 15 comes from the 10x10 hop budgets (NHop needs
    10 classes + 4 ring + 1).
    """
    result = AblationResult("vc-count", "vcs_per_channel")
    for v in vc_counts:
        for alg in algorithms:
            cfg = _base_config(load, vcs_per_channel=v, **overrides)
            try:
                row = _run(cfg, alg, store)
            except Exception as exc:  # budget too small for this scheme
                row = {"throughput": float("nan"), "latency": float("nan"),
                       "delivered": 0, "note": type(exc).__name__}
            result.rows.append({"vcs": v, "algorithm": alg, **row})
    return result


def bonus_card_ablation(
    load: float = 0.5, store: ResultStore | None = None, **overrides
) -> AblationResult:
    """PHop vs Pbc and NHop vs Nbc at identical hardware budgets."""
    result = AblationResult("bonus-cards", "cards on/off")
    for base, carded in (("phop", "pbc"), ("nhop", "nbc")):
        cfg = _base_config(load, **overrides)
        r_base = _run(cfg, base, store)
        r_card = _run(cfg, carded, store)
        gain = (
            100.0 * (r_card["throughput"] / r_base["throughput"] - 1.0)
            if r_base["throughput"]
            else float("nan")
        )
        result.rows.append(
            {
                "pair": f"{base}->{carded}",
                "thr_base": r_base["throughput"],
                "thr_cards": r_card["throughput"],
                "thr_gain_%": round(gain, 1),
                "lat_base": r_base["latency"],
                "lat_cards": r_card["latency"],
            }
        )
    return result


def misroute_limit_ablation(
    load: float = 0.5,
    limits: tuple[int, ...] = (0, 2, 10, 50),
    store: ResultStore | None = None,
    **overrides,
) -> AblationResult:
    """Fully-Adaptive with different misroute caps (the paper uses 10)."""
    result = AblationResult("misroute-limit", "max_misroutes")
    for limit in limits:
        alg = FullyAdaptive()
        alg.max_misroutes = limit
        cfg = _base_config(load, **overrides)
        row = _run(cfg, alg, store)
        result.rows.append({"max_misroutes": limit, **row})
    return result


def buffer_depth_ablation(
    load: float = 0.5,
    depths: tuple[int, ...] = (1, 2, 4, 8),
    algorithm: str = "duato-nbc",
    store: ResultStore | None = None,
    **overrides,
) -> AblationResult:
    """Flit-buffer depth per VC."""
    result = AblationResult("buffer-depth", "buffer_depth")
    for depth in depths:
        cfg = _base_config(load, buffer_depth=depth, **overrides)
        result.rows.append({"depth": depth, **_run(cfg, algorithm, store)})
    return result


def message_length_ablation(
    load: float = 0.5,
    lengths: tuple[int, ...] = (32, 64, 100),
    algorithm: str = "nhop",
    store: ResultStore | None = None,
    **overrides,
) -> AblationResult:
    """The literature's common message lengths (32/64/100 flits)."""
    result = AblationResult("message-length", "message_length")
    for length in lengths:
        cfg = _base_config(load, message_length=length, **overrides)
        result.rows.append({"length": length, **_run(cfg, algorithm, store)})
    return result


def mesh_size_ablation(
    load: float = 0.5,
    radices: tuple[int, ...] = (6, 8, 10, 12),
    algorithm: str = "nhop",
    store: ResultStore | None = None,
    **overrides,
) -> AblationResult:
    """Radix scaling; the hop budgets grow with the diameter."""
    result = AblationResult("mesh-size", "width=height")
    for k in radices:
        cfg = _base_config(load, width=k, **overrides)
        result.rows.append({"radix": k, **_run(cfg, algorithm, store)})
    return result


ABLATIONS = {
    "vc-count": vc_count_ablation,
    "bonus-cards": bonus_card_ablation,
    "misroute-limit": misroute_limit_ablation,
    "buffer-depth": buffer_depth_ablation,
    "message-length": message_length_ablation,
    "mesh-size": mesh_size_ablation,
}


def run_ablation(name: str, *, store=None, **kwargs) -> AblationResult:
    """Run an ablation study by name.

    *store* (a :class:`~repro.store.ResultStore` or directory) routes
    every cell through the shared result cache.
    """
    try:
        fn = ABLATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ABLATIONS))
        raise ValueError(f"unknown ablation {name!r}; known: {known}") from None
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    return fn(store=store, **kwargs)
