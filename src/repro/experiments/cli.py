"""Command-line entry point: regenerate any figure of the paper.

Examples::

    python -m repro.experiments budgets
    python -m repro.experiments fig1 --profile quick
    python -m repro.experiments fig6 --profile paper --out results/
    python -m repro.experiments all --algorithms nhop phop duato-nbc
    python -m repro.experiments all --store            # cache in .repro-store
    python -m repro.experiments store stats            # inspect the cache
    python -m repro.experiments verify check --all     # static routing analysis
    python -m repro.experiments obs bench --label pr3  # perf trajectory
    python -m repro.experiments fig3 --telemetry       # engine counters
    python -m repro.experiments serve query runs/c1 \
        --algorithm nhop --rate 0.01                   # tiered answers
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.budgets_table import print_budgets
from repro.experiments.fig_faults import print_fig4, print_fig5, run_fault_study
from repro.experiments.fig_fring import print_fig6, run_fring_study
from repro.experiments.fig_sweep import print_fig1, print_fig2, run_sweep
from repro.experiments.fig_vc_usage import print_fig3, run_vc_usage
from repro.experiments.profiles import PROFILES, get_profile

EXPERIMENTS = ("budgets", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6")
ABLATION_COMMANDS = tuple(f"ablation-{name}" for name in sorted(ABLATIONS))


def _span_scope(trace, name: str):
    """A driver-phase span published as the ambient trace context.

    With *trace* ``None`` (no manifest, hence no tracing) this is a
    no-op context.  Otherwise the block runs inside a clock span under
    *trace*, and the span is the ambient parent for the duration — so
    both pool workers (which inherit the environment) and the drivers'
    sequential paths hang their ``cell.*`` spans off it, with identical
    deterministic ids either way.
    """
    from contextlib import contextmanager, nullcontext

    if trace is None:
        return nullcontext()

    @contextmanager
    def scope():
        from repro.obs.spans import ambient_scope

        with trace.span(name) as child, ambient_scope(child.context()):
            yield child

    return scope()


def _dump(out_dir: Path | None, name: str, payload: dict) -> None:
    if out_dir is None:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2))
    print(f"[saved {path}]")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        # Store management verbs have their own argument surface:
        # python -m repro.experiments store {ls,stats,gc,export} ...
        from repro.store.cli import main as store_main

        return store_main(argv[1:])
    if argv and argv[0] == "verify":
        # Static-analysis verbs (model checker + linter):
        # python -m repro.experiments verify {check,lint,cdg} ...
        from repro.verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] == "campaigns":
        # Campaign-management verbs:
        # python -m repro.experiments campaigns {plan,run,status,query,merge}
        from repro.campaigns.cli import main as campaigns_main

        return campaigns_main(argv[1:])
    if argv and argv[0] == "obs":
        # Observability verbs (perf harness, manifests, heatmaps,
        # phase profiler, perf ledger):
        # python -m repro.experiments obs
        #   {bench,compare,smoke,report,heatmap,timeline,converge,
        #    profile,history,spans,blame}
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "serve":
        # Serving verbs (tiered queries, reliability, HTTP API):
        # python -m repro.experiments serve {query,reliability,api}
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the IPPS 2007 routing study.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS
        + ABLATION_COMMANDS
        + ("all", "ablations", "report", "campaign"),
        help="which figure or ablation study to regenerate ('report' "
        "renders saved JSON from --out as markdown; 'campaign' runs a "
        "--spec manifest)",
    )
    parser.add_argument(
        "--spec",
        type=Path,
        default=None,
        metavar="FILE",
        help="campaign spec JSON (required by the 'campaign' command)",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        choices=sorted(PROFILES),
        help="simulation scale (default: quick; 'paper' is full scale)",
    )
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict to a subset of algorithm names",
    )
    parser.add_argument(
        "--adaptive-cycles",
        action="store_true",
        help="use the profile's '+auto' twin: every run may stop at the "
        "first window boundary where the batch-means latency CI "
        "converges (cycles_mode='auto'; deterministic, store keys "
        "disjoint from fixed-cycle runs).  Not recommended for the "
        "occupancy studies (fig3/fig6), whose per-cycle statistics "
        "want the full fixed window.",
    )
    parser.add_argument(
        "--seed", type=int, default=2007, help="master seed (default 2007)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also dump raw series as JSON into DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-algorithm progress"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the figure grids and campaigns "
        "(registered profiles only; default 1)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        nargs="?",
        const=None,
        default=False,
        metavar="DIR",
        help="route all simulations through the content-addressed result "
        "store; optional DIR overrides the default location "
        "($REPRO_STORE_DIR or .repro-store).  A second identical run "
        "serves every cell from the cache.",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="attach a telemetry registry to every executed simulation "
        "and print the aggregated engine counters at the end; with "
        "--workers N each worker fills a fresh registry and the parent "
        "merges the snapshots (cache hits are not re-simulated and "
        "therefore not counted).  --trace-out keeps runs in process.",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        nargs="?",
        const=None,
        default=False,
        metavar="FILE",
        help="append a JSONL run manifest (cell timings, cache counters, "
        "telemetry digest); FILE defaults to "
        "manifests/<experiment>_<profile>.jsonl next to the store (or "
        "./manifests without one).  Render with 'python -m repro.obs "
        "report FILE'.",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="record message lifecycles across all executed simulations "
        "and export them (.jsonl for JSON-lines, anything else for "
        "Chrome trace format)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="with --trace-out: trace only 1-in-N messages, chosen "
        "deterministically by message id (default 1 = all)",
    )
    args = parser.parse_args(argv)
    if args.store is False:  # flag absent: caching off
        store = None
    else:
        from repro.store import ResultStore, default_store_dir

        store = ResultStore(
            args.store if args.store is not None else default_store_dir()
        )

    telemetry = tracer = instrument = None
    if args.telemetry or args.trace_out is not None:
        from repro.obs.telemetry import TelemetryRegistry, make_instrument
        from repro.obs.trace_export import lifecycle_tracer

        if args.telemetry:
            telemetry = TelemetryRegistry()
        if args.trace_out is not None:
            tracer = lifecycle_tracer(sample=args.trace_sample)
        instrument = make_instrument(telemetry=telemetry, tracer=tracer)

    if args.experiment == "report":
        from repro.experiments.report import summarize_directory

        print(summarize_directory(args.out or Path("results")))
        return 0

    if args.experiment == "campaign":
        from repro.experiments.campaign import CampaignRunner, CampaignSpec

        if args.spec is None:
            parser.error("campaign requires --spec FILE")
        spec = CampaignSpec.from_dict(json.loads(args.spec.read_text()))
        out_dir = args.out or Path("campaigns") / spec.name
        runner = CampaignRunner(
            spec, out_dir, store=store, instrument=instrument
        )
        progress_cb = None if args.quiet else (
            lambda s: print(s, file=sys.stderr)
        )
        executed = runner.run(progress=progress_cb, workers=args.workers)
        rows = runner.load_results()
        print(
            f"campaign {spec.name!r}: {executed} jobs executed, "
            f"{len(rows)} total results in {out_dir}"
        )
        if telemetry is not None:
            print(telemetry.render(prefix="engine."))
        return 0

    profile_name = args.profile
    if args.adaptive_cycles and not profile_name.endswith("+auto"):
        profile_name = f"{profile_name}+auto"
    profile = get_profile(profile_name)
    algorithms = tuple(args.algorithms) if args.algorithms else None
    progress = None if args.quiet else lambda s: print(s, file=sys.stderr)
    manifest = None
    if args.manifest is not False:
        from repro.obs.manifest import ManifestWriter

        if args.manifest is not None:
            manifest_path = args.manifest
        else:
            base = (
                store.root / "manifests" if store is not None
                else Path("manifests")
            )
            manifest_path = base / f"{args.experiment}_{profile_name}.jsonl"
        manifest = ManifestWriter(manifest_path)
        manifest.run_start(
            args.experiment,
            kind="figure",
            workers=args.workers,
            store=str(store.root) if store is not None else None,
            profile=profile_name,
        )
    spans_rec = trace = None
    if manifest is not None:
        from repro.obs.profile import clock
        from repro.obs.spans import (
            SpanRecorder, Trace, make_span_id, trace_id_from,
        )

        spans_rec = SpanRecorder()
        trace_id = trace_id_from(
            "figure", args.experiment, profile_name, args.seed
        )
        trace = Trace(
            spans_rec, trace_id, make_span_id(trace_id, None, args.experiment)
        )
        t_trace0 = clock()
    if args.experiment == "all":
        wanted: tuple[str, ...] = EXPERIMENTS
    elif args.experiment == "ablations":
        wanted = ABLATION_COMMANDS
    else:
        wanted = (args.experiment,)
    t0 = time.time()

    for command in wanted:
        if not command.startswith("ablation-"):
            continue
        name = command.removeprefix("ablation-")
        if progress:
            progress(f"[ablation] {name}: running")
        result = run_ablation(name, store=store)
        _dump(args.out, f"ablation_{name}", result.to_payload())
        print(result.render())
        print()

    if "budgets" in wanted:
        print(print_budgets(profile.config.width, profile.config.vcs_per_channel))
        print()
    if "fig1" in wanted or "fig2" in wanted:
        with _span_scope(trace, "fig1-fig2"):
            sweep = run_sweep(
                profile, algorithms, seed=args.seed, progress=progress,
                workers=args.workers, store=store, instrument=instrument,
                manifest=manifest, spans=spans_rec,
            )
        _dump(args.out, f"sweep_{profile.name}", sweep.to_payload())
        if "fig1" in wanted:
            print(print_fig1(sweep))
            print()
        if "fig2" in wanted:
            print(print_fig2(sweep))
            print()
    if "fig3" in wanted:
        with _span_scope(trace, "fig3"):
            usage = run_vc_usage(
                profile, algorithms, seed=args.seed, progress=progress,
                workers=args.workers, store=store, instrument=instrument,
                manifest=manifest, spans=spans_rec,
            )
        _dump(args.out, f"fig3_{profile.name}", usage.to_payload())
        print(print_fig3(usage))
        print()
    if "fig4" in wanted or "fig5" in wanted:
        with _span_scope(trace, "fig4-fig5"):
            study = run_fault_study(
                profile, algorithms, seed=args.seed, progress=progress,
                workers=args.workers, store=store, instrument=instrument,
                manifest=manifest, spans=spans_rec,
            )
        _dump(args.out, f"faults_{profile.name}", study.to_payload())
        if "fig4" in wanted:
            print(print_fig4(study))
            print()
        if "fig5" in wanted:
            print(print_fig5(study))
            print()
    if "fig6" in wanted:
        with _span_scope(trace, "fig6"):
            fring = run_fring_study(
                profile, algorithms, seed=args.seed, progress=progress,
                workers=args.workers, store=store, instrument=instrument,
                manifest=manifest, spans=spans_rec,
            )
        _dump(args.out, f"fig6_{profile.name}", fring.to_payload())
        print(print_fig6(fring))
        print()

    if manifest is not None:
        from repro.obs.spans import make_span, merge_spans
        from repro.obs.telemetry import series_snapshot

        spans_rec.add(make_span(
            args.experiment,
            trace_id=trace.trace_id,
            parent_id=None,
            span_id=trace.span_id,
            kind="clock",
            start=t_trace0,
            end=clock(),
            attrs={"profile": profile_name, "workers": args.workers},
        ))
        merged_spans = merge_spans(spans_rec.spans)
        for span in merged_spans:
            manifest.span(span)
        series = (
            series_snapshot(telemetry) if telemetry is not None else None
        )
        manifest.run_finish(
            status="ok",
            telemetry_digest=(
                telemetry.digest() if telemetry is not None else None
            ),
            telemetry_series=series or None,
        )
        manifest.close()
        print(f"[manifest: {manifest.events_written} events "
              f"({len(merged_spans)} spans, trace {trace.trace_id}) -> "
              f"{manifest.path}]")
    if telemetry is not None:
        print(telemetry.render(prefix="engine."))
        print()
    if tracer is not None:
        from repro.obs.trace_export import write_trace

        snapshot = telemetry.snapshot() if telemetry is not None else None
        n = write_trace(
            args.trace_out, tracer, label=args.experiment,
            telemetry_snapshot=snapshot,
        )
        print(f"[trace: {n} events -> {args.trace_out}]")
    if progress:
        progress(f"[total {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
