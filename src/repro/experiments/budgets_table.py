"""The Sections 3-4 virtual-channel budget table.

Regenerates the paper's stated budgets: on a 10x10 mesh PHop needs 19
buffer classes and NHop 10 (``n(k-1)+1`` and ``1+floor(n(k-1)/2)``), all
algorithms are equalized at 24 VCs per physical channel, and 4 of those
are the Boppana-Chalasani ring channels.
"""

from __future__ import annotations

from repro.experiments.ascii_plot import table
from repro.routing.registry import display_name, make_algorithm
from repro.simulator.config import SimConfig
from repro.topology.mesh import Mesh2D


def budget_rows(
    width: int = 10, height: int | None = None, total_vcs: int = 24
) -> list[list[object]]:
    """One row per algorithm: class/adaptive/escape/ring VC counts."""
    mesh = Mesh2D(width, height)
    rows: list[list[object]] = []
    from repro.routing.registry import PAPER_ORDER

    for name in PAPER_ORDER:
        alg = make_algorithm(name)
        budget = alg.build_budget(mesh, total_vcs)
        n_class_vcs = sum(len(v) for v in budget.class_vcs)
        rows.append(
            [
                display_name(name),
                budget.n_classes,
                n_class_vcs,
                len(budget.adaptive_vcs),
                len(budget.escape_vcs),
                len(budget.ring_vcs),
                budget.total,
            ]
        )
    return rows


def print_budgets(width: int = 10, total_vcs: int = 24) -> str:
    head = [
        "algorithm",
        "hop classes",
        "class VCs",
        "adaptive VCs",
        "escape VCs",
        "ring VCs",
        "total",
    ]
    return table(
        head,
        budget_rows(width, total_vcs=total_vcs),
        title=(
            f"Virtual-channel budgets on a {width}x{width} mesh with "
            f"{total_vcs} VCs/channel (paper Sections 3-4)"
        ),
    )
