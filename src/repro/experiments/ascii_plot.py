"""Terminal plotting: multi-series line charts and grouped bar charts.

Good enough to eyeball the *shape* of each reproduced figure (who wins,
where curves take off) straight from the benchmark output, with no
plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_MARKERS = "ox+*#@%&sd^v"


def _finite(values):
    return [v for v in values if v == v and not math.isinf(v)]


def line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render ``{label: (xs, ys)}`` as an ASCII chart with a legend."""
    xs_all: list[float] = []
    ys_all: list[float] = []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ValueError("series xs and ys must have equal length")
        xs_all.extend(_finite(xs))
        ys_all.extend(_finite(y for x, y in zip(xs, ys) if x == x))
    if not xs_all or not ys_all:
        return f"{title}\n(no finite data)"
    x0, x1 = min(xs_all), max(xs_all)
    y0, y1 = min(ys_all), max(ys_all)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (label, (xs, ys)) in enumerate(series.items()):
        mark = _MARKERS[i % len(_MARKERS)]
        legend.append(f"  {mark} {label}")
        for x, y in zip(xs, ys):
            if x != x or y != y or math.isinf(y):
                continue
            col = round((x - x0) / (x1 - x0) * (width - 1))
            row = round((y - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y1:.4g}"
    bottom_label = f"{y0:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            lead = top_label.rjust(pad)
        elif r == height - 1:
            lead = bottom_label.rjust(pad)
        else:
            lead = " " * pad
        lines.append(f"{lead} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    xl = f"{x0:.4g}".ljust(width // 2)
    xr = f"{x1:.4g}".rjust(width - len(xl))
    lines.append(" " * (pad + 2) + xl + xr)
    if xlabel or ylabel:
        lines.append(f"   x: {xlabel}    y: {ylabel}")
    lines.extend(legend)
    return "\n".join(lines)


def bar_chart(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    *,
    width: int = 46,
    title: str = "",
    unit: str = "",
) -> str:
    """Render ``[(row_label, {bar_label: value})]`` as horizontal bars."""
    values = [
        v for _, bars in rows for v in bars.values() if v == v and not math.isinf(v)
    ]
    if not values:
        return f"{title}\n(no finite data)"
    vmax = max(values) or 1.0
    label_w = max(
        (len(f"{rl} {bl}") for rl, bars in rows for bl in bars), default=8
    )
    lines = [title] if title else []
    for row_label, bars in rows:
        for bar_label, value in bars.items():
            tag = f"{row_label} {bar_label}".ljust(label_w)
            if value != value:
                lines.append(f"{tag} | (nan)")
                continue
            n = round(value / vmax * width)
            lines.append(f"{tag} |{'#' * n}{' ' * (width - n)}| {value:.1f}{unit}")
    return "\n".join(lines)


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title] if title else []
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:
            return "nan"
        return f"{value:.4g}"
    return str(value)
