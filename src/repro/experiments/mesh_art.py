"""ASCII rendering of meshes: fault maps and load heatmaps.

Terminal-friendly companions to the Figure 6 analysis — render a fault
pattern with its f-rings, or a per-node load heatmap, without any
plotting dependency.

Legend for :func:`render_faults`:

* ``#`` faulty node
* ``o`` node on exactly one f-ring
* ``@`` node on two or more (overlapping) f-rings
* ``u`` unsafe node (when a labeling is supplied)
* ``.`` ordinary healthy node

Rows are printed with y increasing upward (row ``y = height-1`` first),
matching the coordinate convention of :mod:`repro.topology`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.faults.pattern import FaultPattern


def render_faults(
    pattern: FaultPattern, unsafe: Sequence[bool] | None = None
) -> str:
    """Render a fault pattern (and optional unsafe labeling) as text."""
    mesh = pattern.mesh
    rows = []
    for y in range(mesh.height - 1, -1, -1):
        cells = []
        for x in range(mesh.width):
            node = mesh.node_id(x, y)
            if pattern.is_faulty(node):
                cells.append("#")
            elif unsafe is not None and unsafe[node]:
                cells.append("u")
            else:
                n_rings = len(pattern.rings_at(node))
                cells.append("." if n_rings == 0 else "o" if n_rings == 1 else "@")
        rows.append(f"{y:>2} " + " ".join(cells))
    footer = "   " + " ".join(str(x % 10) for x in range(mesh.width))
    return "\n".join(rows + [footer])


_SHADES = " .:-=+*#%@"


def render_heatmap(
    pattern: FaultPattern, node_values: Sequence[float], *, title: str = ""
) -> str:
    """Render per-node values (e.g. loads) as a density map.

    Faulty nodes render as ``X``; healthy nodes map linearly onto ten
    shade characters from the minimum to the maximum healthy value.
    """
    mesh = pattern.mesh
    if len(node_values) != mesh.n_nodes:
        raise ValueError(
            f"need {mesh.n_nodes} node values, got {len(node_values)}"
        )
    healthy_vals = [
        node_values[n] for n in mesh.nodes() if not pattern.is_faulty(n)
    ]
    lo, hi = min(healthy_vals), max(healthy_vals)
    span = hi - lo
    rows = [title] if title else []
    for y in range(mesh.height - 1, -1, -1):
        cells = []
        for x in range(mesh.width):
            node = mesh.node_id(x, y)
            if pattern.is_faulty(node):
                cells.append("X")
            elif span == 0:
                cells.append(_SHADES[0])
            else:
                level = (node_values[node] - lo) / span
                idx = min(int(level * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)
                cells.append(_SHADES[idx])
        rows.append(f"{y:>2} " + " ".join(cells))
    rows.append("   " + " ".join(str(x % 10) for x in range(mesh.width)))
    rows.append(f"   scale: '{_SHADES[0]}'={lo:.3g} .. '@'={hi:.3g}, X=faulty")
    return "\n".join(rows)
