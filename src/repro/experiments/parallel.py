"""Multiprocessing support for the experiment drivers.

The figure sweeps are embarrassingly parallel across algorithms (every
algorithm runs the same rate/fault grid independently), so the drivers
accept ``workers=N`` and fan the per-algorithm work out to a process
pool.  Workers receive only picklable primitives (profile *name*,
algorithm name, seed, store directory) and rebuild their state locally,
so the pool works with the default ``spawn``/``fork`` start methods
alike.

When a store directory is passed, every worker opens the shared
:class:`~repro.store.ResultStore` on it; the backend's locked appends
make one store safe for all workers at once, and cells another worker
(or an earlier run) already simulated come back as cache hits.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from multiprocessing import get_context


def _make_evaluator(profile_config, seed: int, store_dir: str | None):
    from repro.store.cache import make_evaluator

    return make_evaluator(profile_config, seed=seed, store=store_dir)


def _sweep_worker(args: tuple[str, str, int, str | None]) -> tuple[str, list, list]:
    profile_name, algorithm, seed, store_dir = args
    from repro.experiments.profiles import get_profile

    profile = get_profile(profile_name)
    evaluator = _make_evaluator(profile.config, seed, store_dir)
    points = evaluator.rate_sweep(algorithm, profile.sweep_rates)
    return (
        algorithm,
        [p.throughput for p in points],
        [p.network_latency for p in points],
    )


def _fault_worker(args: tuple[str, str, int, tuple[int, ...], int, str | None]):
    profile_name, algorithm, seed, fault_counts, fault_sets, store_dir = args
    from repro.experiments.profiles import get_profile

    profile = get_profile(profile_name)
    evaluator = _make_evaluator(profile.config, seed, store_dir)
    rate = profile.full_load_rate
    cases = [evaluator.fault_case(n, fault_sets) for n in fault_counts]
    return algorithm, [
        evaluator.run_case(algorithm, case, injection_rate=rate) for case in cases
    ]


def _progress_label(result, index: int) -> str:
    """A printable label for a finished job.

    Workers that return ``(name, ...)`` tuples are labeled by name;
    anything else (scalars, dicts, row lists) falls back to the 1-based
    job index instead of blowing up on ``result[0]``.
    """
    if (
        isinstance(result, tuple)
        and result
        and isinstance(result[0], str)
    ):
        return result[0]
    return f"job {index + 1}"


def parallel_map(
    worker: Callable,
    jobs: Sequence,
    workers: int,
    progress: Callable[[str], None] | None = None,
    label: str = "",
) -> list:
    """Run *worker* over *jobs* with a process pool (ordered results).

    ``workers <= 1`` degrades to a plain in-process loop — callers need
    no special casing, and coverage/debugging stay simple.
    """
    if workers <= 1 or len(jobs) <= 1:
        out = []
        for i, job in enumerate(jobs):
            out.append(worker(job))
            if progress:
                progress(f"[{label}] {_progress_label(out[-1], i)}: done")
        return out
    ctx = get_context()
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        out = []
        for i, result in enumerate(pool.imap(worker, jobs)):
            out.append(result)
            if progress:
                progress(f"[{label}] {_progress_label(result, i)}: done")
        return out
