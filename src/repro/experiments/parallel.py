"""Multiprocessing support for the experiment drivers.

The figure sweeps are embarrassingly parallel across algorithms (every
algorithm runs the same rate/fault grid independently), so the drivers
accept ``workers=N`` and fan the per-algorithm work out to a process
pool.  Workers receive only picklable primitives (profile *name*,
algorithm name, seed, store directory, telemetry flag) and rebuild their
state locally, so the pool works with the default ``spawn``/``fork``
start methods alike.

When a store directory is passed, every worker opens the shared
:class:`~repro.store.ResultStore` on it; the backend's locked appends
make one store safe for all workers at once, and cells another worker
(or an earlier run) already simulated come back as cache hits.

Telemetry distributes by **snapshot + merge**: a registry never crosses
a process boundary.  When the parent's instrument is a telemetry-only
:class:`~repro.obs.telemetry.Instrument`, each worker attaches a *fresh*
registry, and its JSON-safe snapshot rides home with the result for the
parent to fold in with :meth:`~repro.obs.telemetry.TelemetryRegistry.
merge` — counters and histograms come out identical to a sequential
run.  A tracer (ordered event log) cannot merge, so instruments carrying
one keep the sequential path (:func:`pool_safe_instrument`).

Every worker returns ``(algorithm, data)`` where ``data`` carries the
driver-specific series plus the bookkeeping the parent's run manifest
wants: wall ``seconds``, the worker ``pid``, simulated ``cycles``, the
telemetry ``snapshot`` (or ``None``) and the worker evaluator's cache
counters (``cache``, or ``None`` without a store).

Trace spans distribute the same way (snapshot + merge): when the parent
published an ambient trace context (:func:`repro.obs.spans.
ambient_scope` — pool workers inherit the environment at spawn/fork),
each worker records one ``cell.<algorithm>`` span under the ambient
parent and ships it home in ``data["spans"]``.  Deterministic span ids
make the merged set identical to a sequential run's (REP013-style
partition independence).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from multiprocessing import get_context

from repro.obs.profile import clock


def pool_safe_instrument(instrument) -> bool:
    """Whether the drivers may fan out with *instrument* attached.

    ``None`` and telemetry-only :class:`~repro.obs.telemetry.Instrument`
    objects are pool-safe (workers replicate the registry and the parent
    merges snapshots).  Instruments carrying a tracer — and arbitrary
    callables, whose internals the drivers cannot see — force the
    sequential in-process path.
    """
    if instrument is None:
        return True
    from repro.obs.telemetry import Instrument

    return isinstance(instrument, Instrument) and instrument.pool_safe


def merge_worker_output(instrument, data: dict, spans=None) -> None:
    """Fold one worker's telemetry snapshot into the parent registry.

    *spans* (a :class:`~repro.obs.spans.SpanRecorder` or list) collects
    any trace spans the worker recorded under the ambient context.
    """
    snapshot = data.get("snapshot")
    if (
        snapshot
        and instrument is not None
        and getattr(instrument, "telemetry", None) is not None
    ):
        instrument.telemetry.merge(snapshot)
    if spans is not None and data.get("spans"):
        spans.extend(data["spans"])


def job_span(name: str, t0: float) -> dict | None:
    """One clock span for a finished job, under the ambient trace context.

    Returns ``None`` when no context is published — tracing stays fully
    opt-in and jobs outside a traced run record nothing.  Used by both
    the pool workers and the drivers' sequential paths, so the span ids
    (derived from the ambient parent and *name*) come out identical
    either way.
    """
    from repro.obs.spans import ambient, make_span

    context = ambient()
    if context is None:
        return None
    trace_id, parent_id = context
    return make_span(
        name,
        trace_id=trace_id,
        parent_id=parent_id,
        kind="clock",
        start=t0,
        end=clock(),
        attrs={"pid": os.getpid()},
    )


def evaluator_cache_dict(evaluator) -> dict | None:
    """The evaluator's cache counters as a dict (``None`` if uncached)."""
    stats = getattr(evaluator, "stats", None)
    return None if stats is None else stats.as_dict()


def cache_delta(before: dict | None, after: dict | None) -> dict | None:
    """Per-cell cache counters from two cumulative readings."""
    if after is None:
        return None
    if before is None:
        return dict(after)
    return {k: after[k] - before.get(k, 0) for k in after}


# ----------------------------------------------------------------------
# Worker bodies (must stay importable at module top level for pickling)
# ----------------------------------------------------------------------
def _worker_registry(with_telemetry: bool):
    """A fresh ``(registry, instrument)`` pair for one worker."""
    if not with_telemetry:
        return None, None
    from repro.obs.telemetry import TelemetryRegistry, make_instrument

    registry = TelemetryRegistry()
    return registry, make_instrument(telemetry=registry)


def _make_evaluator(profile_config, seed: int, store_dir: str | None,
                    instrument=None):
    from repro.store.cache import make_evaluator

    return make_evaluator(
        profile_config, seed=seed, store=store_dir, instrument=instrument
    )


def _finish_data(
    data: dict, registry, evaluator, t0: float, span_name: str | None = None
) -> dict:
    data["seconds"] = clock() - t0
    data["pid"] = os.getpid()
    data["snapshot"] = None if registry is None else registry.snapshot()
    data["cache"] = evaluator_cache_dict(evaluator)
    span = job_span(span_name, t0) if span_name else None
    data["spans"] = [span] if span else []
    return data


def _sweep_worker(
    args: tuple[str, str, int, str | None, bool],
) -> tuple[str, dict]:
    profile_name, algorithm, seed, store_dir, with_telemetry = args
    from repro.experiments.profiles import get_profile

    t0 = clock()
    profile = get_profile(profile_name)
    registry, instrument = _worker_registry(with_telemetry)
    evaluator = _make_evaluator(profile.config, seed, store_dir, instrument)
    points = evaluator.rate_sweep(algorithm, profile.sweep_rates)
    data = {
        "throughput": [p.throughput for p in points],
        "latency": [p.network_latency for p in points],
        "cycles": sum(p.simulated_cycles for p in points),
    }
    return algorithm, _finish_data(
        data, registry, evaluator, t0, span_name=f"cell.{algorithm}"
    )


def _fault_worker(
    args: tuple[str, str, int, tuple[int, ...], int, str | None, bool],
) -> tuple[str, dict]:
    (profile_name, algorithm, seed, fault_counts, fault_sets, store_dir,
     with_telemetry) = args
    from repro.experiments.profiles import get_profile

    t0 = clock()
    profile = get_profile(profile_name)
    registry, instrument = _worker_registry(with_telemetry)
    evaluator = _make_evaluator(profile.config, seed, store_dir, instrument)
    rate = profile.full_load_rate
    cases = [evaluator.fault_case(n, fault_sets) for n in fault_counts]
    points = [
        evaluator.run_case(algorithm, case, injection_rate=rate)
        for case in cases
    ]
    data = {
        "points": points,
        "cycles": sum(p.simulated_cycles for p in points),
    }
    return algorithm, _finish_data(
        data, registry, evaluator, t0, span_name=f"cell.{algorithm}"
    )


def _vc_usage_worker(
    args: tuple[str, str, int, str | None, bool],
) -> tuple[str, dict]:
    profile_name, algorithm, seed, store_dir, with_telemetry = args
    from repro.experiments.profiles import get_profile
    from repro.metrics.vc_usage import vc_usage_percent

    t0 = clock()
    profile = get_profile(profile_name)
    registry, instrument = _worker_registry(with_telemetry)
    evaluator = _make_evaluator(profile.config, seed, store_dir, instrument)
    case = evaluator.fault_case(profile.vc_usage_faults, 1)
    run = evaluator.run_single(
        algorithm,
        case.patterns[0],
        injection_rate=profile.rate(profile.vc_usage_load),
        collect_vc_stats=True,
    )
    data = {
        "usage": vc_usage_percent(run),
        "cycles": run.measured_cycles + run.config.warmup,
    }
    return algorithm, _finish_data(
        data, registry, evaluator, t0, span_name=f"cell.{algorithm}"
    )


def _fring_worker(
    args: tuple[str, str, int, str | None, bool],
) -> tuple[str, dict]:
    profile_name, algorithm, seed, store_dir, with_telemetry = args
    from repro.experiments.profiles import get_profile
    from repro.faults.generator import figure6_fault_pattern
    from repro.faults.pattern import FaultPattern
    from repro.metrics.traffic_load import ring_corner_split, traffic_load_split

    t0 = clock()
    profile = get_profile(profile_name)
    registry, instrument = _worker_registry(with_telemetry)
    evaluator = _make_evaluator(profile.config, seed, store_dir, instrument)
    faulty = figure6_fault_pattern(evaluator.mesh)
    fault_free = FaultPattern.fault_free(evaluator.mesh)
    ring_nodes = faulty.ring_nodes
    rate = profile.full_load_rate
    splits = {}
    corner_ratio = float("nan")
    cycles = 0
    for label, fp in (("0%", fault_free), ("faulty", faulty)):
        run = evaluator.run_single(
            algorithm, fp, injection_rate=rate, collect_node_stats=True
        )
        splits[label] = traffic_load_split(run, ring_nodes, exclude=fp.faulty)
        cycles += run.measured_cycles + run.config.warmup
        if label == "faulty":
            corner_ratio = ring_corner_split(run, faulty).corner_ratio
    data = {
        "splits": splits,
        "corner_ratio": corner_ratio,
        "cycles": cycles,
    }
    return algorithm, _finish_data(
        data, registry, evaluator, t0, span_name=f"cell.{algorithm}"
    )


def _progress_label(result, index: int) -> str:
    """A printable label for a finished job.

    Workers that return ``(name, ...)`` tuples are labeled by name;
    anything else (scalars, dicts, row lists) falls back to the 1-based
    job index instead of blowing up on ``result[0]``.
    """
    if (
        isinstance(result, tuple)
        and result
        and isinstance(result[0], str)
    ):
        return result[0]
    return f"job {index + 1}"


def parallel_map(
    worker: Callable,
    jobs: Sequence,
    workers: int,
    progress: Callable[[str], None] | None = None,
    label: str = "",
) -> list:
    """Run *worker* over *jobs* with a process pool (ordered results).

    ``workers <= 1`` degrades to a plain in-process loop — callers need
    no special casing, and coverage/debugging stay simple.
    """
    if workers <= 1 or len(jobs) <= 1:
        out = []
        for i, job in enumerate(jobs):
            out.append(worker(job))
            if progress:
                progress(f"[{label}] {_progress_label(out[-1], i)}: done")
        return out
    ctx = get_context()
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        out = []
        for i, result in enumerate(pool.imap(worker, jobs)):
            out.append(result)
            if progress:
                progress(f"[{label}] {_progress_label(result, i)}: done")
        return out
