"""Multiprocessing support for the experiment drivers.

The figure sweeps are embarrassingly parallel across algorithms (every
algorithm runs the same rate/fault grid independently), so the drivers
accept ``workers=N`` and fan the per-algorithm work out to a process
pool.  Workers receive only picklable primitives (profile *name*,
algorithm name, seed) and rebuild their state locally, so the pool works
with the default ``spawn``/``fork`` start methods alike.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from multiprocessing import get_context


def _sweep_worker(args: tuple[str, str, int]) -> tuple[str, list, list]:
    profile_name, algorithm, seed = args
    from repro.core.evaluator import Evaluator
    from repro.experiments.profiles import get_profile

    profile = get_profile(profile_name)
    evaluator = Evaluator(profile.config, seed=seed)
    points = evaluator.rate_sweep(algorithm, profile.sweep_rates)
    return (
        algorithm,
        [p.throughput for p in points],
        [p.network_latency for p in points],
    )


def _fault_worker(args: tuple[str, str, int, tuple[int, ...], int]):
    profile_name, algorithm, seed, fault_counts, fault_sets = args
    from repro.core.evaluator import Evaluator
    from repro.experiments.profiles import get_profile

    profile = get_profile(profile_name)
    evaluator = Evaluator(profile.config, seed=seed)
    rate = profile.full_load_rate
    cases = [evaluator.fault_case(n, fault_sets) for n in fault_counts]
    return algorithm, [
        evaluator.run_case(algorithm, case, injection_rate=rate) for case in cases
    ]


def parallel_map(
    worker: Callable,
    jobs: Sequence,
    workers: int,
    progress: Callable[[str], None] | None = None,
    label: str = "",
) -> list:
    """Run *worker* over *jobs* with a process pool (ordered results).

    ``workers <= 1`` degrades to a plain in-process loop — callers need
    no special casing, and coverage/debugging stay simple.
    """
    if workers <= 1 or len(jobs) <= 1:
        out = []
        for job in jobs:
            out.append(worker(job))
            if progress:
                progress(f"[{label}] {out[-1][0]}: done")
        return out
    ctx = get_context()
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        out = []
        for result in pool.imap(worker, jobs):
            out.append(result)
            if progress:
                progress(f"[{label}] {result[0]}: done")
        return out
