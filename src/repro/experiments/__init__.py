"""Experiment harness: regenerate every figure of the paper.

Each figure has a driver returning structured data plus a printer that
emits the same rows/series the paper reports:

* Figure 1 / Figure 2 — :mod:`repro.experiments.fig_sweep`
  (throughput and latency vs traffic generation rate, fault-free),
* Figure 3 — :mod:`repro.experiments.fig_vc_usage`
  (per-VC utilization at 5% faults),
* Figures 4 / 5 — :mod:`repro.experiments.fig_faults`
  (normalized throughput / latency vs fault percentage at full load),
* Figure 6 — :mod:`repro.experiments.fig_fring`
  (traffic-load split between f-ring nodes and the rest),
* the Section 3-4 VC budget table — :mod:`repro.experiments.budgets_table`.

Run them from the command line::

    python -m repro.experiments fig1 --profile quick
    python -m repro.experiments all --profile paper --out results/
"""

from repro.experiments.profiles import PAPER_PROFILE, QUICK_PROFILE, SMOKE_PROFILE, Profile

__all__ = ["PAPER_PROFILE", "QUICK_PROFILE", "SMOKE_PROFILE", "Profile"]
