"""Canonical run keys: one stable digest per simulation cell.

A *run key* identifies everything that determines a simulation's output:

* the full :class:`~repro.simulator.config.SimConfig` (with the
  injection rate and seed lifted out as explicit top-level fields),
* the algorithm (registry name, plus any instance parameters for
  ad-hoc algorithm objects — see :func:`algorithm_token`),
* the exact fault pattern (mesh dimensions + sorted faulty nodes),
* the traffic pattern label,
* the engine behavior version
  (:data:`~repro.simulator.engine.ENGINE_VERSION`).

The payload is serialized with :func:`canonical_json` — sorted keys, no
whitespace — and hashed with SHA-256, so the key is independent of dict
insertion order and identical across processes and Python versions.
Bumping ``ENGINE_VERSION`` changes every key, which is how stale cached
results self-invalidate after a behavior-changing engine edit.
"""

from __future__ import annotations

import hashlib
import json

from repro.faults.pattern import FaultPattern
from repro.simulator.config import SimConfig
from repro.simulator.engine import ENGINE_VERSION
from repro.util.serialization import config_to_dict, pattern_to_dict

__all__ = [
    "ENGINE_VERSION",
    "algorithm_token",
    "canonical_json",
    "run_key",
    "run_key_payload",
]


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def algorithm_token(algorithm) -> str:
    """A stable text token for an algorithm name or instance.

    Registry names pass through unchanged.  For algorithm *objects*
    (e.g. a ``FullyAdaptive`` with a non-default misroute cap, as the
    ablations build), the token is the registry name plus every public
    scalar instance attribute, so differently parameterized instances
    never share a key.
    """
    if isinstance(algorithm, str):
        return algorithm
    name = getattr(algorithm, "name", type(algorithm).__name__)
    params = {
        k: v
        for k, v in vars(algorithm).items()
        if not k.startswith("_") and isinstance(v, (bool, int, float, str))
    }
    if not params:
        return name
    inner = ",".join(f"{k}={params[k]!r}" for k in sorted(params))
    return f"{name}[{inner}]"


def run_key_payload(
    config: SimConfig,
    algorithm,
    faults: FaultPattern,
    *,
    traffic: str = "uniform",
    engine_version: int | None = None,
) -> dict:
    """The JSON-safe dict a run key digests (useful for debugging).

    ``engine_version`` is resolved at call time (not bound as a default)
    so a bumped :data:`ENGINE_VERSION` takes effect everywhere at once.
    """
    if engine_version is None:
        engine_version = ENGINE_VERSION
    cfg = config_to_dict(config)
    # Lift the per-run fields out of the config block so the key schema
    # matches how callers think about a cell: config x rate x seed.
    rate = cfg.pop("injection_rate")
    seed = cfg.pop("seed")
    return {
        "kind": "run-key",
        "engine_version": engine_version,
        "algorithm": algorithm_token(algorithm),
        "config": cfg,
        "faults": pattern_to_dict(faults),
        "rate": rate,
        "seed": seed,
        "traffic": traffic,
    }


def run_key(
    config: SimConfig,
    algorithm,
    faults: FaultPattern,
    *,
    traffic: str = "uniform",
    engine_version: int | None = None,
) -> str:
    """SHA-256 hex digest identifying one simulation cell."""
    payload = run_key_payload(
        config,
        algorithm,
        faults,
        traffic=traffic,
        engine_version=engine_version,
    )
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
