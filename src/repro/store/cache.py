"""Get-or-run caching on top of the :class:`~repro.core.evaluator.Evaluator`.

:class:`CachedEvaluator` is a drop-in Evaluator whose ``run_single``
first looks the fully-specified run up in a :class:`ResultStore` and only
simulates on a miss.  Because the run key covers the exact per-run config
(rate, derived seed, deadlock action, collection flags), the fault
pattern, the algorithm and the engine version, a hit returns a result
that is field-for-field identical to what the simulation would produce —
figure drivers, ablations and campaigns can all share one store.

Caching is bypassed (not silently mis-keyed) when the evaluator uses a
custom ``pattern_factory`` without a ``traffic_label``: an arbitrary
traffic object cannot be hashed into the key, so those runs always
execute.  Pass a stable ``traffic_label`` to opt such workloads in.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.evaluator import Evaluator
from repro.faults.pattern import FaultPattern
from repro.simulator.config import SimConfig
from repro.simulator.engine import ENGINE_VERSION, SimulationResult
from repro.store.backend import ResultStore
from repro.store.keys import algorithm_token, run_key
from repro.util.serialization import result_from_dict, result_to_dict

__all__ = ["CacheStats", "CachedEvaluator", "make_evaluator"]


@dataclass
class CacheStats:
    """Counters of one :class:`CachedEvaluator`'s cache traffic."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Runs executed without consulting the store (cache disabled, or an
    #: unlabeled custom traffic pattern made the run unkeyable).
    bypassed: int = 0

    @property
    def runs(self) -> int:
        return self.hits + self.misses + self.bypassed

    @property
    def hit_rate(self) -> float:
        """Fraction of keyable lookups served from the store."""
        keyed = self.hits + self.misses
        return self.hits / keyed if keyed else 0.0

    def as_dict(self) -> dict:
        return asdict(self)

    def add(self, payload: "CacheStats | dict") -> None:
        """Fold another evaluator's counters in (e.g. a pool worker's).

        Accepts a :class:`CacheStats` or its :meth:`as_dict` payload, so
        workers can ship plain dicts across process boundaries.
        """
        if isinstance(payload, CacheStats):
            payload = payload.as_dict()
        self.hits += payload.get("hits", 0)
        self.misses += payload.get("misses", 0)
        self.puts += payload.get("puts", 0)
        self.bypassed += payload.get("bypassed", 0)


class CachedEvaluator(Evaluator):
    """An :class:`Evaluator` with get-or-run semantics over a store.

    Parameters
    ----------
    store:
        A :class:`ResultStore`, a store directory path, or ``None`` for
        the default directory (``$REPRO_STORE_DIR`` / ``.repro-store``).
    enabled:
        Opt-out flag: ``False`` makes this behave exactly like a plain
        Evaluator (every run counts as ``bypassed``).
    traffic_label:
        Stable label of the traffic workload for the run key.  Defaults
        to ``"uniform"`` when no ``pattern_factory`` is set; required to
        enable caching when one is.
    """

    def __init__(
        self,
        base_config: SimConfig,
        *,
        seed: int = 2007,
        pattern_factory=None,
        instrument=None,
        store: ResultStore | Path | str | None = None,
        enabled: bool = True,
        traffic_label: str | None = None,
    ) -> None:
        super().__init__(
            base_config,
            seed=seed,
            pattern_factory=pattern_factory,
            instrument=instrument,
        )
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.enabled = enabled
        if traffic_label is None and pattern_factory is None:
            traffic_label = "uniform"
        self.traffic_label = traffic_label
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def run_single(
        self,
        algorithm: str,
        faults: FaultPattern,
        *,
        injection_rate: float | None = None,
        set_index: int = 0,
        **overrides,
    ) -> SimulationResult:
        alg, cfg = self._prepare_run(
            algorithm,
            faults,
            injection_rate=injection_rate,
            set_index=set_index,
            **overrides,
        )
        if not self.enabled or self.traffic_label is None:
            self.stats.bypassed += 1
            return self._execute(alg, cfg, faults)
        token = algorithm_token(algorithm)
        key = run_key(cfg, token, faults, traffic=self.traffic_label)
        cached = self.store.get(key)
        if cached is not None:
            self.stats.hits += 1
            return result_from_dict(cached)
        self.stats.misses += 1
        result = self._execute(alg, cfg, faults)
        if self.store.put(
            key,
            result_to_dict(result),
            engine_version=ENGINE_VERSION,
            algorithm=token,
        ):
            self.stats.puts += 1
        return result


def make_evaluator(
    base_config: SimConfig,
    *,
    seed: int = 2007,
    pattern_factory=None,
    instrument=None,
    store: ResultStore | Path | str | None = None,
    **cache_kwargs,
) -> Evaluator:
    """A plain Evaluator, or a cached one when *store* is given.

    This is the single switch the experiment drivers use: ``store=None``
    preserves the original uncached behavior exactly.  ``instrument``
    (see :class:`~repro.core.evaluator.Evaluator`) observes executed
    runs only — cache hits skip the simulation entirely.
    """
    if store is None:
        return Evaluator(
            base_config,
            seed=seed,
            pattern_factory=pattern_factory,
            instrument=instrument,
        )
    return CachedEvaluator(
        base_config,
        seed=seed,
        pattern_factory=pattern_factory,
        instrument=instrument,
        store=store,
        **cache_kwargs,
    )
