"""Store management verbs, reachable as ``python -m repro.experiments store``.

::

    python -m repro.experiments store ls
    python -m repro.experiments store stats
    python -m repro.experiments store gc --engine-version 1
    python -m repro.experiments store export results/store-export.jsonl

All verbs take ``--store DIR`` (default: ``$REPRO_STORE_DIR`` or
``.repro-store``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.simulator.engine import ENGINE_VERSION
from repro.store.backend import ResultStore, default_store_dir

__all__ = ["main"]


def _cmd_ls(store: ResultStore, args: argparse.Namespace) -> int:
    rows = list(store.rows())
    shown = rows if args.limit <= 0 else rows[: args.limit]
    for row in shown:
        payload = row.get("payload", {})
        cfg = payload.get("config", {})
        print(
            f"{row['key'][:16]}  v{row.get('engine_version')}  "
            f"{row.get('algorithm') or '?':<24}  "
            f"rate={cfg.get('injection_rate', float('nan')):.6g}  "
            f"seed={cfg.get('seed', '?')}"
        )
    if len(rows) > len(shown):
        print(f"... {len(rows) - len(shown)} more (use --limit 0 for all)")
    print(f"{len(rows)} rows in {store.root}")
    return 0


def _cmd_stats(store: ResultStore, args: argparse.Namespace) -> int:
    print(json.dumps(store.stats(), indent=2))
    return 0


def _cmd_gc(store: ResultStore, args: argparse.Namespace) -> int:
    evicted = store.gc(engine_version=args.engine_version)
    print(
        f"evicted {evicted} rows not at engine version "
        f"{args.engine_version}; {len(store)} rows remain"
    )
    return 0


def _cmd_export(store: ResultStore, args: argparse.Namespace) -> int:
    n = store.export(args.dest)
    print(f"exported {n} rows to {args.dest}")
    return 0


def main(argv: list[str] | None = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help="store directory (default: $REPRO_STORE_DIR or .repro-store)",
    )
    parser = argparse.ArgumentParser(
        prog="repro-experiments store",
        description="Inspect and maintain the content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_ls = sub.add_parser("ls", parents=[common], help="list stored rows")
    p_ls.add_argument(
        "--limit", type=int, default=50, help="max rows to print (0 = all)"
    )
    p_ls.set_defaults(fn=_cmd_ls)

    p_stats = sub.add_parser(
        "stats", parents=[common], help="row counts and file size as JSON"
    )
    p_stats.set_defaults(fn=_cmd_stats)

    p_gc = sub.add_parser(
        "gc", parents=[common], help="evict rows from other engine versions"
    )
    p_gc.add_argument(
        "--engine-version",
        type=int,
        default=ENGINE_VERSION,
        help=f"engine version to keep (default: current, {ENGINE_VERSION})",
    )
    p_gc.set_defaults(fn=_cmd_gc)

    p_export = sub.add_parser(
        "export", parents=[common], help="write deduplicated canonical JSONL"
    )
    p_export.add_argument("dest", type=Path, help="output .jsonl path")
    p_export.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    store = ResultStore(args.store if args.store is not None else default_store_dir())
    try:
        return args.fn(store, args)
    except BrokenPipeError:
        # Downstream (`ls … | head`) closed the pipe: redirect stdout to
        # devnull so the interpreter's exit flush stays quiet.
        import os
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
