"""Content-addressed simulation result store with parallel-safe caching.

Every execution path — the figure drivers, the ablations, the campaign
runner — routes its simulations through one persistent store keyed by a
canonical digest of everything that determines a run's output.  A second
regeneration of any figure therefore performs zero simulations, and a
campaign reuses cells a figure sweep already produced.

* :mod:`repro.store.keys` — canonical run keys
  (SHA-256 over config x algorithm x faults x rate x seed x engine
  version);
* :mod:`repro.store.backend` — crash-safe JSONL + index backend that
  concurrent ``multiprocessing`` workers can share;
* :mod:`repro.store.cache` — :class:`CachedEvaluator` with get-or-run
  semantics and hit/miss counters;
* :mod:`repro.store.cli` — the ``store ls/stats/gc/export`` verbs of
  ``python -m repro.experiments``.
"""

from repro.store.backend import (
    DEFAULT_STORE_DIR,
    STORE_DIR_ENV,
    ResultStore,
    default_store_dir,
    store_dir_of,
)
from repro.store.cache import CachedEvaluator, CacheStats, make_evaluator
from repro.store.keys import (
    ENGINE_VERSION,
    algorithm_token,
    canonical_json,
    run_key,
    run_key_payload,
)

__all__ = [
    "CacheStats",
    "CachedEvaluator",
    "DEFAULT_STORE_DIR",
    "ENGINE_VERSION",
    "ResultStore",
    "STORE_DIR_ENV",
    "algorithm_token",
    "canonical_json",
    "default_store_dir",
    "make_evaluator",
    "run_key",
    "run_key_payload",
    "store_dir_of",
]
