"""Crash-safe, parallel-safe file backend for simulation results.

Layout under the store directory::

    rows.jsonl    append-only; one canonical-JSON row per stored result
    index.json    derived key -> byte-offset map (atomic temp+replace)
    .lock         flock target serializing appends and rewrites

Design rules (the reasons the store survives concurrent
``multiprocessing`` workers and crashes):

* ``rows.jsonl`` is the single source of truth.  Every append happens
  under an exclusive ``flock`` and writes one complete line followed by
  ``flush`` + ``fsync``, so a reader never sees a torn row and two
  writers never interleave.  Inside the lock the writer first re-scans
  the tail for rows other processes appended — that re-check is the
  cross-process dedup point.
* ``index.json`` is a pure cache.  It is written via temp-file +
  :func:`os.replace` (atomic on POSIX), and any inconsistency — missing
  file, short file, offset pointing at the wrong key — triggers a full
  rebuild from ``rows.jsonl``.
* Readers keep an in-memory index plus a high-water byte offset; a
  lookup miss re-scans only the bytes appended since, so sharing one
  store between long-lived processes stays cheap.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.simulator.engine import ENGINE_VERSION
from repro.store.keys import canonical_json

try:  # POSIX; on platforms without fcntl the store degrades to no locking
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

_SCHEMA_VERSION = 1

#: Environment variable overriding the default store location.
STORE_DIR_ENV = "REPRO_STORE_DIR"
DEFAULT_STORE_DIR = ".repro-store"


def default_store_dir() -> Path:
    """``$REPRO_STORE_DIR`` if set, else ``.repro-store`` in the cwd."""
    return Path(os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR))


def store_dir_of(store) -> str | None:
    """The directory behind a store argument, as a picklable string.

    Accepts a :class:`ResultStore`, a path, or ``None``; the experiment
    drivers use this to ship the store location to pool workers, which
    reopen it locally.
    """
    if store is None:
        return None
    if isinstance(store, ResultStore):
        return str(store.root)
    return str(store)


class ResultStore:
    """Content-addressed result store shared by all execution paths.

    Parameters
    ----------
    root:
        Store directory (created if missing).  ``None`` uses
        :func:`default_store_dir`.
    fsync:
        Fsync every appended row (default).  Tests on tmpfs may disable
        it for speed; production writers should leave it on.
    """

    def __init__(self, root: Path | str | None = None, *, fsync: bool = True) -> None:
        self.root = Path(root) if root is not None else default_store_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.rows_path = self.root / "rows.jsonl"
        self.index_path = self.root / "index.json"
        self.lock_path = self.root / ".lock"
        self._fsync = fsync
        #: key -> [byte offset, engine_version, algorithm token]
        self._index: dict[str, list] = {}
        self._scanned = 0  # bytes of rows.jsonl already folded into _index
        self._load_index_file()
        self._refresh()

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Exclusive inter-process lock around appends and rewrites."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self.lock_path, "w") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _load_index_file(self) -> None:
        try:
            payload = json.loads(self.index_path.read_text())
            if payload.get("schema") != _SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            self._index = {k: list(v) for k, v in payload["keys"].items()}
            self._scanned = int(payload["scanned"])
        except (OSError, ValueError, KeyError, TypeError):
            self._index = {}
            self._scanned = 0

    def _write_index_file(self) -> None:
        payload = {
            "kind": "store-index",
            "schema": _SCHEMA_VERSION,
            "scanned": self._scanned,
            "keys": self._index,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".index-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as sink:
                sink.write(json.dumps(payload))
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _refresh(self) -> None:
        """Fold rows appended since the last scan into the index."""
        try:
            size = self.rows_path.stat().st_size
        except OSError:
            size = 0
        if size < self._scanned:  # rows.jsonl was rewritten (gc): rebuild
            self._index = {}
            self._scanned = 0
        if size == self._scanned:
            return
        with open(self.rows_path, "rb") as src:
            src.seek(self._scanned)
            offset = self._scanned
            for raw in src:
                if not raw.endswith(b"\n"):
                    break  # torn tail from a crashed writer: ignore
                try:
                    row = json.loads(raw)
                    key = row["key"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    offset += len(raw)
                    continue  # corrupt row: skip it, keep scanning
                self._index.setdefault(
                    key,
                    [offset, row.get("engine_version"), row.get("algorithm", "")],
                )
                offset += len(raw)
            self._scanned = offset

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._refresh()
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        if key not in self._index:
            self._refresh()
        return key in self._index

    def keys(self) -> list[str]:
        self._refresh()
        return list(self._index)

    def _read_row_at(self, offset: int) -> dict | None:
        try:
            with open(self.rows_path, "rb") as src:
                src.seek(offset)
                return json.loads(src.readline())
        except (OSError, json.JSONDecodeError):
            return None

    def get_row(self, key: str) -> dict | None:
        """The full stored row for *key* (metadata + payload), or None."""
        if key not in self._index:
            self._refresh()
            if key not in self._index:
                return None
        row = self._read_row_at(self._index[key][0])
        if row is None or row.get("key") != key:
            # Stale offset (another process rewrote the file between our
            # refresh and the read): rebuild the index and retry once.
            self._index = {}
            self._scanned = 0
            self._refresh()
            if key not in self._index:
                return None
            row = self._read_row_at(self._index[key][0])
            if row is None or row.get("key") != key:
                return None
        return row

    def get(self, key: str) -> dict | None:
        """The stored payload for *key*, or None."""
        row = self.get_row(key)
        return row["payload"] if row is not None else None

    def rows(self) -> Iterator[dict]:
        """All stored rows, deduplicated, in file order."""
        self._refresh()
        seen: set[str] = set()
        try:
            src = open(self.rows_path, "rb")
        except OSError:
            return
        with src:
            for raw in src:
                if not raw.endswith(b"\n"):
                    break
                try:
                    row = json.loads(raw)
                    key = row["key"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue
                if key in seen:
                    continue
                seen.add(key)
                yield row

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        payload: dict,
        *,
        engine_version: int = ENGINE_VERSION,
        algorithm: str = "",
    ) -> bool:
        """Store *payload* under *key*; returns False if already present.

        Concurrent workers racing on the same key are serialized by the
        store lock: the loser sees the winner's row during the in-lock
        tail re-scan and skips its own append.
        """
        if key in self:
            return False
        row = {
            "kind": "store-row",
            "schema": _SCHEMA_VERSION,
            "key": key,
            "engine_version": engine_version,
            "algorithm": algorithm,
            "payload": payload,
        }
        line = (canonical_json(row) + "\n").encode("utf-8")
        with self._locked():
            self._refresh()  # pick up rows other processes just appended
            if key in self._index:
                return False
            with open(self.rows_path, "ab") as sink:
                offset = sink.tell()
                sink.write(line)
                sink.flush()
                if self._fsync:
                    os.fsync(sink.fileno())
            self._index[key] = [offset, engine_version, algorithm]
            self._scanned = offset + len(line)
            self._write_index_file()
        return True

    # ------------------------------------------------------------------
    # Management verbs
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Row counts by engine version and algorithm, plus file size."""
        self._refresh()
        by_version: Counter = Counter()
        by_algorithm: Counter = Counter()
        for _, version, algorithm in self._index.values():
            by_version[str(version)] += 1
            by_algorithm[algorithm or "?"] += 1
        try:
            file_bytes = self.rows_path.stat().st_size
        except OSError:
            file_bytes = 0
        return {
            "root": str(self.root),
            "rows": len(self._index),
            "engine_version": ENGINE_VERSION,
            "by_engine_version": dict(sorted(by_version.items())),
            "by_algorithm": dict(sorted(by_algorithm.items())),
            "file_bytes": file_bytes,
        }

    def gc(self, *, engine_version: int = ENGINE_VERSION) -> int:
        """Drop every row whose engine version differs from the given one.

        Rewrites ``rows.jsonl`` (deduplicated, via temp + atomic replace)
        under the store lock; returns the number of evicted rows.
        """
        with self._locked():
            self._refresh()
            before = len(self._index)
            kept = [
                row for row in self.rows()
                if row.get("engine_version") == engine_version
            ]
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=".rows-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as sink:
                    for row in kept:
                        sink.write((canonical_json(row) + "\n").encode("utf-8"))
                    sink.flush()
                    os.fsync(sink.fileno())
                os.replace(tmp, self.rows_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._index = {}
            self._scanned = 0
            self._refresh()
            self._write_index_file()
            return before - len(self._index)

    def export(self, dest: Path | str) -> int:
        """Write all rows, deduplicated and key-sorted, to *dest*.

        The export is self-contained canonical JSONL — feed it to another
        store directory as its ``rows.jsonl`` to merge or seed a cache.
        """
        dest = Path(dest)
        dest.parent.mkdir(parents=True, exist_ok=True)
        rows = sorted(self.rows(), key=lambda row: row["key"])
        with open(dest, "w") as sink:
            for row in rows:
                sink.write(canonical_json(row) + "\n")
        return len(rows)

    def clear(self) -> None:
        """Drop every row (testing aid)."""
        with self._locked():
            self.rows_path.unlink(missing_ok=True)
            self._index = {}
            self._scanned = 0
            self._write_index_file()
