"""Algorithm registry: instantiate any of the paper's algorithms by name."""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm
from repro.routing.boura import BouraAdaptive, BouraFaultTolerant
from repro.routing.duato import DuatoNbc, DuatoPbc, DuatoXY
from repro.routing.ecube import ECube
from repro.routing.freeform import FullyAdaptive, MinimalAdaptive
from repro.routing.hop_based import Nbc, NHop, Pbc, PHop
from repro.routing.turn_model import WestFirst

_REGISTRY: dict[str, type[RoutingAlgorithm]] = {
    cls.name: cls
    for cls in (
        PHop,
        NHop,
        Pbc,
        Nbc,
        DuatoXY,
        DuatoPbc,
        DuatoNbc,
        MinimalAdaptive,
        FullyAdaptive,
        BouraAdaptive,
        BouraFaultTolerant,
        # Extension baselines (not part of the paper's ten):
        ECube,
        WestFirst,
    )
}

#: All registered algorithm names, in the order the paper's figures list
#: them (Boura appears twice: the adaptive variant and the fault-tolerant
#: one are separate curves in every figure).
PAPER_ORDER: tuple[str, ...] = (
    "duato",
    "boura",
    "fully-adaptive",
    "nbc",
    "nhop",
    "phop",
    "pbc",
    "duato-pbc",
    "duato-nbc",
    "minimal-adaptive",
    "boura-ft",
)

ALGORITHM_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: Figure-legend labels used by the paper.
DISPLAY_NAMES: dict[str, str] = {
    "phop": "PHop",
    "nhop": "NHop",
    "pbc": "Pbc",
    "nbc": "Nbc",
    "duato": "Duato's routing",
    "duato-pbc": "Duato-Pbc",
    "duato-nbc": "Duato-Nbc",
    "minimal-adaptive": "Minimal-Adaptive",
    "fully-adaptive": "Fully-Adaptive",
    "boura": "Boura (Adaptive)",
    "boura-ft": "Boura (Fault-Tolerant)",
    "ecube": "E-cube (XY, baseline)",
    "west-first": "West-First (turn model, baseline)",
}


def make_algorithm(name: str) -> RoutingAlgorithm:
    """A fresh instance of the algorithm registered under *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None
    return cls()


def display_name(name: str) -> str:
    """The paper's legend label for algorithm *name*."""
    return DISPLAY_NAMES.get(name, name)
