"""Routing-algorithm interface and the Boppana–Chalasani ring overlay.

Every algorithm answers one question for a header flit at node ``u``:
*which output virtual channels may carry this message's next hop?*  The
answer is a list of **tiers** — each tier a list of ``(direction, vcs)``
pairs — tried in order: a later tier is considered only when every VC of
the earlier tiers is busy (this encodes Duato's class-I/class-II rule and
Fully-Adaptive's "misroute only when all minimal VCs are busy").

The base class implements the parts shared by all ten algorithms:

* minimal-direction computation and fault filtering,
* the Boppana–Chalasani fault-ring transit (entry, fixed per-class
  orientation, chain-end reversal, exit at the first node where minimal
  routing resumes),
* per-hop bookkeeping (hop counts, negative hops, class/card updates).

Subclasses implement :meth:`tiers_for` (fault-free-direction candidates)
and, for hop-based schemes, :meth:`min_class`.
"""

from __future__ import annotations

from repro.faults.pattern import FaultPattern
from repro.routing.budgets import (
    ROLE_CLASS,
    ROLE_RING,
    VcBudget,
)
from repro.simulator.message import (
    RING_EW,
    RING_NS,
    RING_SN,
    RING_WE,
    Message,
)
from repro.topology.directions import DIRECTIONS, EAST, NORTH, SOUTH, WEST
from repro.topology.mesh import Mesh2D, direction_of_hop

#: A candidate tier: ``[(direction, (vc, vc, ...)), ...]``.
Tier = list[tuple[int, tuple[int, ...]]]


class RoutingError(RuntimeError):
    """An algorithm reached a state its invariants forbid."""


class RoutingAlgorithm:
    """Base class for all routing algorithms.

    Lifecycle: construct → :meth:`prepare` (binds mesh, fault pattern and
    VC budget) → per message :meth:`new_message` → per routing attempt
    :meth:`candidate_tiers` → on success :meth:`on_vc_allocated`.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Whether the scheme is provably deadlock-free (drives the default
    #: deadlock action in experiments: oracle-raise vs drain-recovery).
    deadlock_free = True

    def __init__(self) -> None:
        self.mesh: Mesh2D | None = None
        self.faults: FaultPattern | None = None
        self.budget: VcBudget | None = None
        #: Number of times the hop-class schedule had to saturate at the
        #: top class (only possible after ring detours/misroutes pushed a
        #: message past its worst-case class budget).
        self.class_caps = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prepare(self, mesh: Mesh2D, faults: FaultPattern, total_vcs: int) -> None:
        """Bind the algorithm to a network before a simulation run."""
        if faults.mesh != mesh:
            raise ValueError("fault pattern belongs to a different mesh")
        self.mesh = mesh
        self.faults = faults
        self.budget = self.build_budget(mesh, total_vcs)
        self.class_caps = 0
        self._post_prepare()

    def _post_prepare(self) -> None:
        """Hook for subclass precomputation (labelings etc.)."""

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        raise NotImplementedError

    def new_message(self, msg: Message) -> None:
        """Initialize per-message routing state (cards etc.)."""

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def candidate_tiers(self, msg: Message, node: int) -> list[Tier]:
        """Tiers of output-VC candidates for the header of *msg* at *node*.

        Handles fault blocking generically: when every minimal direction
        leads into a fault region the message enters (or continues) ring
        transit; otherwise the fault-free minimal directions are passed to
        the subclass.
        """
        mesh = self.mesh
        faulty = self.faults.faulty_mask
        mdirs = mesh.minimal_directions(node, msg.dst)
        neighbors = mesh.neighbor_table(node)
        free_dirs = tuple(d for d in mdirs if not faulty[neighbors[d]])
        route_dirs = self.route_dirs(msg, node, mdirs, free_dirs)
        if route_dirs and self._may_exit_ring(msg, node):
            if msg.ring is not None:
                msg.ring = None  # ring exit: minimal routing resumes
            return self.tiers_for(msg, node, route_dirs)
        return [self._ring_tier(msg, node, mdirs)]

    def route_dirs(
        self,
        msg: Message,
        node: int,
        mdirs: tuple[int, ...],
        free_dirs: tuple[int, ...],
    ) -> tuple[int, ...]:
        """Fault-free minimal directions this scheme may actually use.

        Returning ``()`` declares the message fault-blocked even though a
        minimal neighbor is alive: deterministic schemes whose one
        permitted hop is faulty must take the ring, because detouring on
        the other minimal dimension reintroduces exactly the turns their
        channel ordering forbids.
        """
        return free_dirs

    def _may_exit_ring(self, msg: Message, node: int) -> bool:
        """Whether a message in ring transit may resume minimal routing.

        Exiting requires being strictly closer to the destination than
        where the transit began; without this rule a message that detoured
        around one side of a region would take a minimal hop straight back
        to the node where it was blocked, oscillate, and eventually
        deadlock on its own flits (the "wrap-onto-own-tail" failure).
        """
        if msg.ring is None:
            return True
        return self.mesh.distance(node, msg.dst) < msg.ring_entry_dist

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        """Candidate tiers over fault-free minimal directions *dirs*."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Boppana–Chalasani ring transit
    # ------------------------------------------------------------------
    def _ring_tier(self, msg: Message, node: int, mdirs: tuple[int, ...]) -> Tier:
        mesh, faults = self.mesh, self.faults
        neighbors = mesh.neighbor_table(node)
        blocking = -1
        for d in mdirs:
            nb = neighbors[d]
            if nb >= 0 and faults.faulty_mask[nb]:
                blocking = nb
                break
        if blocking >= 0:
            ring = faults.ring_around(blocking)
        elif msg.ring is not None and node in msg.ring:
            # Not fault-blocked here, but the exit bar is unmet: keep
            # walking the current ring toward the region's far side.
            ring = msg.ring
        else:
            raise RoutingError(
                f"message {msg.id} fault-blocked at node {node} but no "
                "minimal neighbor is faulty"
            )

        if msg.ring_class < 0:
            dx, dy = mesh.offsets(node, msg.dst)
            if dx > 0:
                msg.ring_class = RING_WE
            elif dx < 0:
                msg.ring_class = RING_EW
            elif dy > 0:
                msg.ring_class = RING_NS
            else:
                msg.ring_class = RING_SN
        if msg.ring is not ring:
            # (Re-)entering a ring: orientation is fixed per message class
            # (WE/NS clockwise, EW/SN counter-clockwise) so that two
            # same-class messages never traverse a ring head-on.  The
            # entry distance is the exit bar (see _may_exit_ring).
            msg.ring = ring
            msg.ring_orient_cw = msg.ring_class in (RING_WE, RING_NS)
            msg.ring_entry_dist = mesh.distance(node, msg.dst)

        nxt = ring.next_node(node, msg.ring_orient_cw)
        if nxt < 0:  # open f-chain end: reverse and walk back
            msg.ring_orient_cw = not msg.ring_orient_cw
            nxt = ring.next_node(node, msg.ring_orient_cw)
            if nxt < 0:
                raise RoutingError(
                    f"degenerate single-node fault chain at node {node}"
                )
        direction = direction_of_hop(mesh, node, nxt)
        ring_vc = self.budget.ring_vcs[msg.ring_class]
        return [(direction, (ring_vc,))]

    # ------------------------------------------------------------------
    # Per-hop bookkeeping
    # ------------------------------------------------------------------
    def min_class(self, msg: Message, node: int) -> int:
        """Lowest hop class legal for the next non-ring hop (hop schemes)."""
        return 0

    def on_vc_allocated(self, msg: Message, node: int, direction: int, vc: int) -> None:
        """Record the hop implied by granting *vc* in *direction* at *node*.

        Called exactly once per header VC allocation; the header is then
        guaranteed to take that hop.
        """
        msg.hops += 1
        budget = self.budget
        role = budget.role_of[vc]
        if role == ROLE_RING:
            # Ring hops freeze the hop-class schedule (DESIGN.md §3.7).
            return
        if role == ROLE_CLASS:
            chosen = budget.class_of[vc]
            lo = self.min_class(msg, node)
            if chosen < lo:
                raise RoutingError(
                    f"message {msg.id} allocated class {chosen} below its "
                    f"minimum {lo}"
                )
            msg.cards -= chosen - lo
            msg.cls = chosen
        # Hop counters advance on every non-ring hop (including adaptive
        # class-I hops, so a later escape into the hop classes stays legal).
        msg.counted_hops += 1
        if self.mesh.checkerboard_label(node):
            msg.neg_hops += 1
        self._account(msg, node, direction, vc)

    def _account(self, msg: Message, node: int, direction: int, vc: int) -> None:
        """Subclass hook for extra per-hop state (misroute counts etc.)."""

    # ------------------------------------------------------------------
    def _capped(self, lo: int) -> int:
        """Saturate a class index at the top class, counting overflows."""
        max_class = self.budget.max_class
        if lo > max_class:
            self.class_caps += 1
            return max_class
        return lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
