"""Turn-model routing: West-First (Glass & Ni) as an extension baseline.

The turn model achieves deadlock freedom *without* virtual-channel
classes by forbidding two of the eight turns: in West-First, a message
makes all of its westward hops first; once it has turned off the west
direction it may route adaptively east/north/south but never turn back
west.  The two forbidden turns (N->W and S->W) break every abstract
cycle, so any number of VCs may be used freely.

This is a *partially* adaptive algorithm — messages with a westward
offset are fully deterministic until the offset is corrected — which
makes it an instructive midpoint between the deterministic e-cube
baseline and the paper's fully adaptive schemes.  Fault tolerance comes
from the shared Boppana–Chalasani ring overlay of the base class.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, free_pool_budget
from repro.simulator.message import Message
from repro.topology.directions import WEST
from repro.topology.mesh import Mesh2D


class WestFirst(RoutingAlgorithm):
    """West-First turn-model routing with B-C fault rings."""

    name = "west-first"
    deadlock_free = True

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return free_pool_budget(total_vcs)

    def route_dirs(
        self,
        msg: Message,
        node: int,
        mdirs: tuple[int, ...],
        free_dirs: tuple[int, ...],
    ) -> tuple[int, ...]:
        # While a west offset remains the only legal hop is west; if that
        # hop is faulty the message is fault-blocked and must take the
        # B-C ring.  Adapting north/south/east here would have to turn
        # back west later — exactly the two turns (N->W, S->W) the model
        # forbids, and the checker finds the 8-channel cycle they close
        # around an interior fault region.
        if WEST in mdirs and WEST not in free_dirs:
            return ()
        return free_dirs

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        if WEST in dirs:
            # All westward hops come first; no adaptivity while a west
            # offset remains (the defining West-First restriction).
            return [[(WEST, adaptive)]]
        return [[(d, adaptive) for d in dirs]]
