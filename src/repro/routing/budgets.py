"""Virtual-channel budgets.

A :class:`VcBudget` assigns every VC index of a physical channel a role:

* **hop classes** — the ordered buffer classes of the hop-based schemes
  (PHop/NHop and their bonus-card/escape variants),
* **adaptive** — Duato's class I (or the whole pool for the unsupervised
  algorithms),
* **escape** — Duato's class II when the escape algorithm is XY,
* **ring** — the four Boppana–Chalasani fault-ring VCs (one per message
  class WE/EW/NS/SN), always the *last four* indices.

The same layout applies to every physical channel in the network; the
paper equalizes all algorithms at 24 VCs per channel for "almost equal
hardware cost".
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Role tags for :attr:`VcBudget.role_of`.
ROLE_CLASS = 0
ROLE_ADAPTIVE = 1
ROLE_ESCAPE = 2
ROLE_RING = 3

#: Printable role names, indexed by the ``ROLE_*`` tags (telemetry
#: counters and the Figure 3 class rollup key on these).
ROLE_NAMES = ("class", "adaptive", "escape", "ring")

N_RING_CLASSES = 4


class VcBudgetError(ValueError):
    """The requested VC count cannot accommodate the algorithm's needs."""


@dataclass(frozen=True)
class VcBudget:
    """Per-physical-channel virtual-channel layout.

    Attributes
    ----------
    total:
        VCs per physical channel.
    class_vcs:
        ``class_vcs[i]`` is the tuple of VC indices of hop class *i*
        (empty tuple-of-tuples for algorithms without hop classes).
    adaptive_vcs:
        Duato class I / unsupervised pool.
    escape_vcs:
        Duato class II when the escape algorithm is XY.
    ring_vcs:
        ``ring_vcs[c]`` is the VC index reserved for ring class *c*
        (``RING_WE`` .. ``RING_SN``).
    group_vcs:
        Optional named VC groups (used by Boura's partition).
    """

    total: int
    class_vcs: tuple[tuple[int, ...], ...] = ()
    adaptive_vcs: tuple[int, ...] = ()
    escape_vcs: tuple[int, ...] = ()
    ring_vcs: tuple[int, ...] = ()
    group_vcs: dict[str, tuple[int, ...]] = field(default_factory=dict)
    role_of: tuple[int, ...] = ()
    class_of: tuple[int, ...] = ()
    _range_cache: dict[tuple[int, int], tuple[int, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_classes(self) -> int:
        return len(self.class_vcs)

    @property
    def max_class(self) -> int:
        """Highest hop-class index (-1 if the budget has no classes)."""
        return len(self.class_vcs) - 1

    def class_range_vcs(self, lo: int, hi: int) -> tuple[int, ...]:
        """All VC indices of classes ``lo..hi`` inclusive (cached)."""
        key = (lo, hi)
        cached = self._range_cache.get(key)
        if cached is None:
            vcs: list[int] = []
            for c in range(lo, hi + 1):
                vcs.extend(self.class_vcs[c])
            cached = tuple(vcs)
            self._range_cache[key] = cached
        return cached

    def validate(self) -> None:
        """Check that the layout partitions ``0..total-1`` exactly."""
        seen: list[int] = []
        for vcs in self.class_vcs:
            seen.extend(vcs)
        seen.extend(self.adaptive_vcs)
        seen.extend(self.escape_vcs)
        seen.extend(self.ring_vcs)
        if sorted(seen) != list(range(self.total)):
            raise VcBudgetError(
                f"budget does not partition VCs 0..{self.total - 1}: {sorted(seen)}"
            )
        if len(self.ring_vcs) != N_RING_CLASSES:
            raise VcBudgetError("budget must reserve exactly 4 ring VCs")


def _finalize(
    total: int,
    class_vcs: list[list[int]],
    adaptive: list[int],
    escape: list[int],
    ring: list[int],
    groups: dict[str, tuple[int, ...]] | None = None,
) -> VcBudget:
    role = [ROLE_ADAPTIVE] * total
    cls = [-1] * total
    for i, vcs in enumerate(class_vcs):
        for v in vcs:
            role[v] = ROLE_CLASS
            cls[v] = i
    for v in escape:
        role[v] = ROLE_ESCAPE
    for v in ring:
        role[v] = ROLE_RING
    budget = VcBudget(
        total=total,
        class_vcs=tuple(tuple(v) for v in class_vcs),
        adaptive_vcs=tuple(adaptive),
        escape_vcs=tuple(escape),
        ring_vcs=tuple(ring),
        group_vcs=dict(groups or {}),
        role_of=tuple(role),
        class_of=tuple(cls),
    )
    budget.validate()
    return budget


def _ring_tail(total: int) -> list[int]:
    """The four ring VCs: always the last four indices."""
    return [total - 4, total - 3, total - 2, total - 1]


def hop_class_budget(
    n_classes: int, total: int, *, adaptive: int = 0
) -> VcBudget:
    """Budget for a hop-based scheme with *n_classes* buffer classes.

    The four ring VCs take the top indices; *adaptive* VCs (Duato class I,
    at the low indices, matching the paper's "VC0 and VC1 belong to class
    I") come next; the remaining VCs are dealt round-robin to the hop
    classes starting from class 0, so any surplus widens the low classes
    first (the paper's 24th PHop VC).
    """
    if n_classes < 1:
        raise VcBudgetError("need at least one hop class")
    if adaptive < 0:
        raise VcBudgetError(
            f"{total} VCs cannot fit the hop classes plus ring VCs "
            f"(adaptive share would be {adaptive})"
        )
    need = n_classes + adaptive + N_RING_CLASSES
    if total < need:
        raise VcBudgetError(
            f"need at least {need} VCs ({n_classes} classes + {adaptive} "
            f"adaptive + 4 ring), got {total}"
        )
    ring = _ring_tail(total)
    adaptive_vcs = list(range(adaptive))
    class_vcs: list[list[int]] = [[] for _ in range(n_classes)]
    pool = list(range(adaptive, total - N_RING_CLASSES))
    for i, v in enumerate(pool):
        class_vcs[i % n_classes].append(v)
    return _finalize(total, class_vcs, adaptive_vcs, [], ring)


def adaptive_escape_budget(total: int, *, escape: int = 2) -> VcBudget:
    """Budget for Duato-with-XY-escape: class I adaptive + *escape* VCs."""
    need = escape + 1 + N_RING_CLASSES
    if total < need:
        raise VcBudgetError(
            f"need at least {need} VCs (1 adaptive + {escape} escape + 4 "
            f"ring), got {total}"
        )
    ring = _ring_tail(total)
    n_adaptive = total - escape - N_RING_CLASSES
    adaptive = list(range(n_adaptive))
    escape_vcs = list(range(n_adaptive, n_adaptive + escape))
    return _finalize(total, [], adaptive, escape_vcs, ring)


def free_pool_budget(total: int) -> VcBudget:
    """Budget for the unsupervised algorithms: one big adaptive pool."""
    if total < 1 + N_RING_CLASSES:
        raise VcBudgetError(f"need at least 5 VCs, got {total}")
    ring = _ring_tail(total)
    adaptive = list(range(total - N_RING_CLASSES))
    return _finalize(total, [], adaptive, [], ring)


def boura_budget(total: int) -> VcBudget:
    """Budget for Boura's 3-class partition (Y+, Y-, X-only).

    The non-ring VCs split as evenly as possible into the three groups
    (the X-only group absorbs the remainder last, mirroring the original
    scheme's bias toward the Y virtual networks).
    """
    if total < 3 + N_RING_CLASSES:
        raise VcBudgetError(f"need at least 7 VCs, got {total}")
    ring = _ring_tail(total)
    pool = total - N_RING_CLASSES
    base, rem = divmod(pool, 3)
    sizes = [base + (1 if i < rem else 0) for i in range(3)]
    start = 0
    groups = {}
    for name, size in zip(("y_plus", "y_minus", "x_only"), sizes):
        groups[name] = tuple(range(start, start + size))
        start += size
    adaptive = list(range(pool))
    return _finalize(total, [], adaptive, [], ring, groups)
