"""Duato's methodology: adaptive class I over a deadlock-free class II.

A header first tries any class-I (adaptive) VC on any fault-free minimal
direction; only when all of those are busy does it request its class-II
escape VC.  Per Duato's theory the escape layer must itself be
deadlock-free; the paper never names it for the standalone "Duato's
routing", so we use dimension-order XY (canonical choice, see DESIGN.md
§3.3).  Duato-Pbc and Duato-Nbc use the bonus-card hop schemes as the
escape layer, which is exactly how the paper builds them: "the best
performance is achieved when class II contains minimum required virtual
channels and extra virtual channels are allocated to class I".
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, adaptive_escape_budget, hop_class_budget
from repro.routing.hop_based import Nbc, Pbc
from repro.simulator.message import Message
from repro.topology.directions import EAST, WEST
from repro.topology.mesh import Mesh2D


class DuatoXY(RoutingAlgorithm):
    """Duato's routing with 2 XY dimension-order escape VCs."""

    name = "duato"
    escape_count = 2

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return adaptive_escape_budget(total_vcs, escape=self.escape_count)

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        tier1: Tier = [(d, adaptive) for d in dirs]
        # Escape: dimension order prefers correcting x first.
        # minimal_directions() lists the x direction first when present,
        # so dirs[0] is the XY choice among the fault-free directions.
        tier2: Tier = [(dirs[0], self.budget.escape_vcs)]
        return [tier1, tier2]


class _DuatoHop:
    """Mixin turning a hop scheme into Duato class II under adaptive VCs."""

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        tier1: Tier = [(d, adaptive) for d in dirs]
        tier2 = self.class_tier(msg, node, dirs)
        return [tier1, tier2]


class DuatoPbc(_DuatoHop, Pbc):
    """Duato's methodology with Pbc as the escape layer."""

    name = "duato-pbc"

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        n_classes = self.n_classes(mesh)
        adaptive = total_vcs - n_classes - 4
        return hop_class_budget(n_classes, total_vcs, adaptive=adaptive)


class DuatoNbc(_DuatoHop, Nbc):
    """Duato's methodology with Nbc as the escape layer."""

    name = "duato-nbc"

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        n_classes = self.n_classes(mesh)
        adaptive = total_vcs - n_classes - 4
        return hop_class_budget(n_classes, total_vcs, adaptive=adaptive)
