"""Duato's methodology: adaptive class I over a deadlock-free class II.

A header first tries any class-I (adaptive) VC on any fault-free minimal
direction; only when all of those are busy does it request its class-II
escape VC.  Per Duato's theory the escape layer must itself be
deadlock-free; the paper never names it for the standalone "Duato's
routing", so we use dimension-order XY (canonical choice, see DESIGN.md
§3.3).  Duato-Pbc and Duato-Nbc use the bonus-card hop schemes as the
escape layer, which is exactly how the paper builds them: "the best
performance is achieved when class II contains minimum required virtual
channels and extra virtual channels are allocated to class I".
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import ROLE_ADAPTIVE, VcBudget, adaptive_escape_budget, hop_class_budget
from repro.routing.hop_based import Nbc, Pbc
from repro.simulator.message import Message
from repro.topology.directions import EAST, WEST
from repro.topology.mesh import Mesh2D


class DuatoXY(RoutingAlgorithm):
    """Duato's routing with 2 XY dimension-order escape VCs."""

    name = "duato"
    deadlock_free = True
    escape_count = 2

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return adaptive_escape_budget(total_vcs, escape=self.escape_count)

    def candidate_tiers(self, msg: Message, node: int) -> list[Tier]:
        # The escape network must stay deadlock-free on its own; masking
        # the escape hop to "first *fault-free* minimal direction" lets it
        # turn Y-before-X around a fault region and close a channel cycle
        # (found by repro.verify).  So the escape layer is the *fortified*
        # e-cube: strict XY while the XY hop is alive, the B-C fault ring
        # when it is not.
        mesh = self.mesh
        faulty = self.faults.faulty_mask
        mdirs = mesh.minimal_directions(node, msg.dst)
        neighbors = mesh.neighbor_table(node)
        free_dirs = tuple(d for d in mdirs if not faulty[neighbors[d]])
        if not free_dirs or not self._may_exit_ring(msg, node):
            return [self._ring_tier(msg, node, mdirs)]
        if msg.ring is not None:
            msg.ring = None  # ring exit: minimal routing resumes
        if free_dirs[0] == mdirs[0]:
            return self.tiers_for(msg, node, free_dirs)
        tier1: Tier = [(d, self.budget.adaptive_vcs) for d in free_dirs]
        return [tier1, self._ring_tier(msg, node, mdirs)]

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        tier1: Tier = [(d, adaptive) for d in dirs]
        # Escape: dimension order prefers correcting x first.
        # minimal_directions() lists the x direction first when present,
        # so dirs[0] is the XY choice among the fault-free directions.
        tier2: Tier = [(dirs[0], self.budget.escape_vcs)]
        return [tier1, tier2]


class _DuatoHop:
    """Mixin turning a hop scheme into Duato class II under adaptive VCs."""

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        tier1: Tier = [(d, adaptive) for d in dirs]
        tier2 = self.class_tier(msg, node, dirs)
        return [tier1, tier2]


class DuatoPbc(_DuatoHop, Pbc):
    """Duato's methodology with Pbc as the escape layer."""

    name = "duato-pbc"
    deadlock_free = True

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        n_classes = self.n_classes(mesh)
        adaptive = total_vcs - n_classes - 4
        return hop_class_budget(n_classes, total_vcs, adaptive=adaptive)


class DuatoNbc(_DuatoHop, Nbc):
    """Duato's methodology with Nbc as the escape layer."""

    name = "duato-nbc"
    deadlock_free = True

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        n_classes = self.n_classes(mesh)
        adaptive = total_vcs - n_classes - 4
        return hop_class_budget(n_classes, total_vcs, adaptive=adaptive)

    def _account(self, msg: Message, node: int, direction: int, vc: int) -> None:
        # NHop's labeling argument needs every hop out of a label-1 node
        # to bump the class schedule; a class-I (adaptive) hop bypasses
        # the class-VC allocation where that bump lives, so a
        # card-holding message could re-enter the escape classes at an
        # unchanged class and close a same-class cycle (repro.verify
        # exhibits one on a fault-free 4x4).  Advance the floor here.
        if (
            self.budget.role_of[vc] == ROLE_ADAPTIVE
            and self.mesh.checkerboard_label(node)
        ):
            msg.cls = self._capped(msg.cls + 1)
