"""Minimal-Adaptive and Fully-Adaptive routing.

The paper's "first category": algorithms that are completely free in
choosing virtual channels — every VC in the pool is equivalent and the
algorithm applies no supervision.  Neither scheme is deadlock-free;
simulations run them with the engine's drain-recovery watchdog (the paper
does not state how its simulator coped — DESIGN.md §3.6).

**Fully-Adaptive** additionally misroutes: when every VC on every
fault-free minimal direction is busy, the header may take a non-minimal
hop, at most :attr:`FullyAdaptive.max_misroutes` times per message
(paper: "the number of the misroutes is limited and is set to 10").
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, free_pool_budget
from repro.simulator.message import Message
from repro.topology.directions import DIRECTIONS
from repro.topology.mesh import Mesh2D


class MinimalAdaptive(RoutingAlgorithm):
    """Any free VC on any fault-free minimal direction; no supervision."""

    name = "minimal-adaptive"
    deadlock_free = False

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return free_pool_budget(total_vcs)

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        return [[(d, adaptive) for d in dirs]]


class FullyAdaptive(MinimalAdaptive):
    """Minimal-Adaptive plus bounded misrouting."""

    name = "fully-adaptive"
    deadlock_free = False
    max_misroutes = 10

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        adaptive = self.budget.adaptive_vcs
        tiers = [[(d, adaptive) for d in dirs]]
        if msg.misroutes < self.max_misroutes:
            neighbors = self.mesh.neighbor_table(node)
            faulty = self.faults.faulty_mask
            detour = [
                (d, adaptive)
                for d in DIRECTIONS
                if d not in dirs and neighbors[d] >= 0 and not faulty[neighbors[d]]
            ]
            if detour:
                tiers.append(detour)
        return tiers

    def _account(self, msg: Message, node: int, direction: int, vc: int) -> None:
        if direction not in self.mesh.minimal_directions(node, msg.dst):
            msg.misroutes += 1
