"""Boura's routing algorithm — adaptive and fault-tolerant variants.

Boura & Das [7] give a fully adaptive deadlock-free scheme with three
virtual channels per physical channel plus a node-labeling rule for fault
tolerance.  Following DESIGN.md §3.5, the partition splits messages by
their remaining Y offset into three virtual networks:

* ``y_plus``  — messages still needing to move +y (may hop E/W/N),
* ``y_minus`` — messages still needing to move -y (may hop E/W/S),
* ``x_only``  — messages with the Y offset corrected (may hop E/W).

A message never crosses between ``y_plus`` and ``y_minus`` (the sign of a
minimal Y offset cannot flip) and enters ``x_only`` at most once, so the
class order is acyclic; within a class, vertical hops strictly increase
(or decrease) y and horizontal hops keep one direction per message, so no
intra-class cycle exists either — the scheme is deadlock-free.

**Boura (Fault-Tolerant)** adds the labeling fixpoint (a node is unsafe
with >= 2 faulty-or-unsafe neighbors); unsafe nodes are avoided as
intermediate hops when a safe minimal alternative exists, and messages
fault-blocked despite that fall back on the ring transit of the base
class.
"""

from __future__ import annotations

from repro.faults.labeling import NodeStatus, boura_labeling
from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, boura_budget
from repro.simulator.message import Message
from repro.topology.mesh import Mesh2D


class BouraAdaptive(RoutingAlgorithm):
    """Boura's 3-class fully adaptive partition ("Boura (Adaptive)")."""

    name = "boura"
    deadlock_free = True

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return boura_budget(total_vcs)

    def _group_for(self, msg: Message, node: int) -> tuple[int, ...]:
        _, dy = self.mesh.offsets(node, msg.dst)
        groups = self.budget.group_vcs
        if dy > 0:
            return groups["y_plus"]
        if dy < 0:
            return groups["y_minus"]
        return groups["x_only"]

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        group = self._group_for(msg, node)
        return [[(d, group) for d in dirs]]


class BouraFaultTolerant(BouraAdaptive):
    """Boura's scheme with unsafe-node labeling ("Boura (Fault-Tolerant)")."""

    name = "boura-ft"
    deadlock_free = True

    def __init__(self) -> None:
        super().__init__()
        self._unsafe: list[bool] = []

    def _post_prepare(self) -> None:
        status = boura_labeling(self.mesh, self.faults.faulty)
        self._unsafe = [s == NodeStatus.UNSAFE for s in status]

    @property
    def unsafe_mask(self) -> list[bool]:
        """Per-node unsafe flags from the labeling fixpoint."""
        return self._unsafe

    def candidate_tiers(self, msg: Message, node: int) -> list[Tier]:
        mesh = self.mesh
        faulty = self.faults.faulty_mask
        unsafe = self._unsafe
        mdirs = mesh.minimal_directions(node, msg.dst)
        neighbors = mesh.neighbor_table(node)

        free_dirs = tuple(d for d in mdirs if not faulty[neighbors[d]])
        if not free_dirs or not self._may_exit_ring(msg, node):
            return [self._ring_tier(msg, node, mdirs)]
        if msg.ring is not None:
            msg.ring = None
        # Prefer safe intermediate hops; a hop onto an unsafe node is fine
        # when that node is the destination, and the preference is waived
        # entirely for messages destined inside an unsafe pocket.
        if not unsafe[msg.dst]:
            safe_dirs = tuple(
                d
                for d in free_dirs
                if not unsafe[neighbors[d]] or neighbors[d] == msg.dst
            )
            if safe_dirs:
                return self.tiers_for(msg, node, safe_dirs)
        return self.tiers_for(msg, node, free_dirs)
