"""Hop-based schemes: PHop, NHop and their bonus-card variants Pbc, Nbc.

These come from Boppana & Chalasani's deadlock-free design framework [9]:

* **PHop** (Positive-Hop): a message that has taken ``h`` hops uses a
  buffer (VC) class ``h`` for its next hop; classes strictly increase
  along every path, so the class order is acyclic and the scheme is
  deadlock-free.  Needs ``diameter + 1`` classes.
* **NHop** (Negative-Hop): the mesh is 2-colored like a checkerboard; a
  hop from a higher to a lower label is *negative*, and a message that
  has taken ``i`` negative hops uses class ``i``.  Any cycle of channels
  contains a negative hop, so cycles would require a class increase —
  deadlock-free with only ``1 + floor(diameter/2)`` classes.
* **Pbc / Nbc** add *bonus cards*: a message that needs fewer classes
  than the worst case may spend the difference to start (and continue)
  in higher — typically less congested — classes.  Spending a card keeps
  the class schedule monotone, so deadlock freedom is preserved.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, hop_class_budget
from repro.simulator.message import Message
from repro.topology.mesh import Mesh2D


class _HopScheme(RoutingAlgorithm):
    """Shared machinery of the four hop-based schemes."""

    #: Whether messages receive bonus cards at injection.
    bonus_cards = False
    #: Duato class-I VCs reserved in front of the hop classes (0 for the
    #: plain schemes; the Duato-Pbc/Nbc subclasses override).
    adaptive_count = 0

    def n_classes(self, mesh: Mesh2D) -> int:
        raise NotImplementedError

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return hop_class_budget(
            self.n_classes(mesh), total_vcs, adaptive=self.adaptive_count
        )

    def max_cards(self, msg: Message) -> int:
        """Bonus cards granted to *msg* at injection."""
        raise NotImplementedError

    def new_message(self, msg: Message) -> None:
        msg.cards = self.max_cards(msg) if self.bonus_cards else 0

    def class_tier(self, msg: Message, node: int, dirs: tuple[int, ...]) -> Tier:
        """The hop-class candidate tier: classes ``lo .. lo + cards``."""
        lo = self.min_class(msg, node)
        hi = self._capped(lo + msg.cards)
        vcs = self.budget.class_range_vcs(lo, hi)
        return [(d, vcs) for d in dirs]

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        return [self.class_tier(msg, node, dirs)]


class PHop(_HopScheme):
    """Positive-Hop routing (class = hops taken)."""

    name = "phop"
    deadlock_free = True

    def n_classes(self, mesh: Mesh2D) -> int:
        return mesh.diameter + 1

    def max_cards(self, msg: Message) -> int:
        # diameter minus the hops this message will take on a minimal path
        return self.mesh.diameter - self.mesh.distance(msg.src, msg.dst)

    def min_class(self, msg: Message, node: int) -> int:
        # Strictly increasing: above both the previous class and the hop
        # count (the latter matters when adaptive class-I hops advanced the
        # schedule without touching a class VC).
        return self._capped(max(msg.cls + 1, msg.counted_hops))


class Pbc(PHop):
    """PHop with bonus cards."""

    name = "pbc"
    deadlock_free = True
    bonus_cards = True


class NHop(_HopScheme):
    """Negative-Hop routing (class = negative hops taken)."""

    name = "nhop"
    deadlock_free = True

    def n_classes(self, mesh: Mesh2D) -> int:
        return 1 + mesh.diameter // 2

    def required_negative_hops(self, src: int, dst: int) -> int:
        """Negative hops on any minimal path from *src* to *dst*.

        With the checkerboard coloring every hop alternates label, so the
        count depends only on the path length and the source label: paths
        from a label-1 node start with a negative hop.
        """
        length = self.mesh.distance(src, dst)
        if self.mesh.checkerboard_label(src):
            return (length + 1) // 2
        return length // 2

    def max_cards(self, msg: Message) -> int:
        return self.budget.max_class - self.required_negative_hops(msg.src, msg.dst)

    def min_class(self, msg: Message, node: int) -> int:
        # >= negative hops taken; strictly above the previous class when
        # the upcoming hop is negative (all hops out of a label-1 node are
        # negative, so negativity is a property of the current node).
        bump = 1 if self.mesh.checkerboard_label(node) else 0
        return self._capped(max(msg.neg_hops, msg.cls + bump))


class Nbc(NHop):
    """NHop with bonus cards."""

    name = "nbc"
    deadlock_free = True
    bonus_cards = True
