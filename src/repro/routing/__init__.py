"""The ten adaptive fault-tolerant routing algorithms of the paper.

All algorithms are *minimal fully adaptive* in the fault-free case and are
fortified with the Boppana–Chalasani fault-ring scheme (4 dedicated ring
virtual channels per physical channel); they differ in how they supervise
the remaining virtual channels:

======================  ====================================================
``phop``                Positive-Hop: VC class = hops taken
``nhop``                Negative-Hop: VC class = negative hops taken
``pbc``                 PHop with bonus cards
``nbc``                 NHop with bonus cards
``duato``               Duato's methodology, XY escape channels
``duato-pbc``           Duato's methodology, Pbc escape layer
``duato-nbc``           Duato's methodology, Nbc escape layer
``minimal-adaptive``    any free VC on any minimal direction
``fully-adaptive``      minimal-adaptive + bounded misrouting (10)
``boura``               Boura's 3-class partition ("Boura (Adaptive)")
``boura-ft``            same + unsafe-node labeling ("Boura (Fault-Tolerant)")
======================  ====================================================

Use :func:`repro.routing.registry.make_algorithm` (or
:data:`ALGORITHM_NAMES`) to instantiate by name.
"""

from repro.routing.base import RoutingAlgorithm, RoutingError
from repro.routing.budgets import VcBudget, VcBudgetError
from repro.routing.boura import BouraAdaptive, BouraFaultTolerant
from repro.routing.duato import DuatoNbc, DuatoPbc, DuatoXY
from repro.routing.freeform import FullyAdaptive, MinimalAdaptive
from repro.routing.hop_based import Nbc, NHop, Pbc, PHop
from repro.routing.registry import ALGORITHM_NAMES, PAPER_ORDER, make_algorithm

__all__ = [
    "ALGORITHM_NAMES",
    "PAPER_ORDER",
    "BouraAdaptive",
    "BouraFaultTolerant",
    "DuatoNbc",
    "DuatoPbc",
    "DuatoXY",
    "FullyAdaptive",
    "MinimalAdaptive",
    "Nbc",
    "NHop",
    "Pbc",
    "PHop",
    "RoutingAlgorithm",
    "RoutingError",
    "VcBudget",
    "VcBudgetError",
    "make_algorithm",
]
