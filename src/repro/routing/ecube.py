"""Deterministic e-cube (XY dimension-order) routing.

Not one of the paper's ten algorithms, but the canonical baseline the
Boppana–Chalasani fault-ring scheme was originally defined for
(TC'95 [1]): correct the X offset fully, then the Y offset.  Dimension
order makes the channel dependency graph acyclic, so XY is deadlock-free
with any number of VCs per channel; here the non-ring pool is shared
freely among messages on the single XY-permitted direction.

Included as an extension baseline: the paper's adaptive algorithms should
beat it under congestion (adaptivity) while matching it at zero load.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, free_pool_budget
from repro.simulator.message import Message
from repro.topology.mesh import Mesh2D


class ECube(RoutingAlgorithm):
    """Deterministic XY routing with B-C fault rings."""

    name = "ecube"
    deadlock_free = True

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return free_pool_budget(total_vcs)

    def route_dirs(
        self,
        msg: Message,
        node: int,
        mdirs: tuple[int, ...],
        free_dirs: tuple[int, ...],
    ) -> tuple[int, ...]:
        # E-cube is fault-blocked exactly when its dimension-order hop is
        # faulty (B-C TC'95): detouring on the other minimal dimension
        # would reintroduce the Y-before-X turns dimension order forbids
        # (repro.verify finds the resulting channel cycle around any
        # interior fault region).
        if free_dirs and free_dirs[0] == mdirs[0]:
            return free_dirs
        return ()

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        # minimal_directions lists X before Y, and route_dirs() guarantees
        # dirs[0] is the dimension-order hop; when that hop is faulty the
        # message traverses the fault ring instead.
        return [[(dirs[0], self.budget.adaptive_vcs)]]
