"""Deterministic e-cube (XY dimension-order) routing.

Not one of the paper's ten algorithms, but the canonical baseline the
Boppana–Chalasani fault-ring scheme was originally defined for
(TC'95 [1]): correct the X offset fully, then the Y offset.  Dimension
order makes the channel dependency graph acyclic, so XY is deadlock-free
with any number of VCs per channel; here the non-ring pool is shared
freely among messages on the single XY-permitted direction.

Included as an extension baseline: the paper's adaptive algorithms should
beat it under congestion (adaptivity) while matching it at zero load.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm, Tier
from repro.routing.budgets import VcBudget, free_pool_budget
from repro.simulator.message import Message
from repro.topology.mesh import Mesh2D


class ECube(RoutingAlgorithm):
    """Deterministic XY routing with B-C fault rings."""

    name = "ecube"

    def build_budget(self, mesh: Mesh2D, total_vcs: int) -> VcBudget:
        return free_pool_budget(total_vcs)

    def tiers_for(self, msg: Message, node: int, dirs: tuple[int, ...]) -> list[Tier]:
        # minimal_directions lists X before Y; the e-cube choice is the
        # first fault-free entry (X unless the X-way neighbor is faulty,
        # in which case the paper's fortification detours via Y/rings).
        return [[(dirs[0], self.budget.adaptive_vcs)]]
